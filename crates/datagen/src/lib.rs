//! Synthetic data and workload generation (Section 5 of the paper).
//!
//! The paper evaluates estimators on (a) eight columns of the proprietary
//! Great-West Life customer database and (b) a matrix of synthetic datasets.
//! This crate builds both:
//!
//! * [`rng`] — a dependency-free, deterministic PRNG (splitmix64 seeding a
//!   xoshiro256++ generator) so every dataset and workload regenerates
//!   bit-identically from a 64-bit seed,
//! * [`zipf`] — Knuth's generalized Zipf distribution of duplicates over
//!   distinct values (θ = 0 uniform, θ = 0.86 the "80-20" rule),
//! * [`placement`] — the windowed clustering placement (a modification of
//!   Wolf et al. 1990, exactly as §5.2 describes): values processed in key
//!   order, records placed uniformly in a sliding window of `⌈K·T⌉` pages
//!   with a 5% noise factor,
//! * [`dataset`] — the resulting logical dataset: per-value record counts
//!   plus the page of every record in key-sequence order, convertible to a
//!   [`epfis_lrusim::KeyedTrace`],
//! * [`scans`] — the §5 scan workload: 50/50 mixtures of "small" (r ∈
//!   (0, 0.2)) and "large" (r ∈ (0.2, 1)) range scans,
//! * [`gwl`] — stand-ins for the GWL columns: synthesis tuned (via binary
//!   search on the window parameter K) to match each column's published
//!   page count, records/page, cardinality, and clustering factor C.

pub mod dataset;
pub mod gwl;
pub mod placement;
pub mod rng;
pub mod scans;
pub mod zipf;

pub use dataset::{Dataset, DatasetSpec};
pub use gwl::{synthesize_gwl_column, GwlColumn, GWL_COLUMNS};
pub use placement::PlacementConfig;
pub use rng::Rng;
pub use scans::{RangeScan, ScanKind, ScanWorkloadConfig, WorkloadGenerator};
pub use zipf::zipf_counts;
