//! Knuth's generalized Zipf distribution of duplicates.
//!
//! Section 5.2: "Knuth (1973) described a generalized Zipf distribution with
//! a parameter θ that can be used to model distributions such as the uniform
//! distribution (θ = 0) or the '80-20' distribution (θ = 0.86)."
//!
//! The i-th most frequent of `I` distinct values receives probability
//! `p_i ∝ (1/i)^θ`. We convert the probabilities into exact integer record
//! counts summing to `N` with largest-remainder rounding, guaranteeing every
//! distinct value at least one record (it would not be a distinct value of
//! the column otherwise).

use crate::rng::Rng;

/// Exact per-rank record counts for `n` records over `distinct` values with
/// skew `theta` (rank 1 = most frequent, descending).
///
/// ```
/// use epfis_datagen::zipf_counts;
///
/// let uniform = zipf_counts(1000, 10, 0.0);
/// assert!(uniform.iter().all(|&c| c == 100));
///
/// let skewed = zipf_counts(1000, 10, 0.86); // the "80-20" shape
/// assert!(skewed[0] > 2 * skewed[9]);
/// assert_eq!(skewed.iter().sum::<u64>(), 1000);
/// ```
///
/// # Panics
/// Panics if `distinct == 0`, `n < distinct` (each value needs a record), or
/// `theta` is negative/non-finite.
pub fn zipf_counts(n: u64, distinct: u64, theta: f64) -> Vec<u64> {
    assert!(distinct > 0, "need at least one distinct value");
    assert!(
        n >= distinct,
        "need at least one record per distinct value (n={n}, distinct={distinct})"
    );
    assert!(
        theta.is_finite() && theta >= 0.0,
        "theta must be finite and non-negative"
    );
    let i = distinct as usize;
    // Weights (1/rank)^theta; theta == 0 is exactly uniform.
    let weights: Vec<f64> = (1..=i).map(|rank| (rank as f64).powf(-theta)).collect();
    let total_w: f64 = weights.iter().sum();
    // Reserve one record per value, distribute the remainder proportionally.
    let spare = n - distinct;
    let mut counts: Vec<u64> = Vec::with_capacity(i);
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(i);
    let mut assigned: u64 = 0;
    for (idx, w) in weights.iter().enumerate() {
        let exact = spare as f64 * w / total_w;
        let floor = exact.floor() as u64;
        counts.push(1 + floor);
        assigned += floor;
        remainders.push((idx, exact - exact.floor()));
    }
    // Largest remainders get the leftover records (ties broken by rank so
    // the result is deterministic).
    let mut leftover = spare - assigned;
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    for (idx, _) in remainders {
        if leftover == 0 {
            break;
        }
        counts[idx] += 1;
        leftover -= 1;
    }
    debug_assert_eq!(counts.iter().sum::<u64>(), n);
    counts
}

/// Assigns the rank frequencies from [`zipf_counts`] to value positions.
///
/// The paper does not pin which *values* are frequent; correlating frequency
/// rank with key order would conflate skew with clustering, so by default
/// the harness shuffles the assignment with a seeded [`Rng`].
pub fn shuffled_counts(n: u64, distinct: u64, theta: f64, rng: &mut Rng) -> Vec<u64> {
    let mut counts = zipf_counts(n, distinct, theta);
    rng.shuffle(&mut counts);
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sum_to_n() {
        for (n, i, theta) in [(100u64, 10u64, 0.0), (1000, 7, 0.86), (50, 50, 2.0)] {
            let c = zipf_counts(n, i, theta);
            assert_eq!(c.len(), i as usize);
            assert_eq!(c.iter().sum::<u64>(), n);
        }
    }

    #[test]
    fn every_value_gets_at_least_one_record() {
        let c = zipf_counts(1000, 100, 3.0);
        assert!(c.iter().all(|&x| x >= 1));
    }

    #[test]
    fn theta_zero_is_uniform() {
        let c = zipf_counts(1000, 10, 0.0);
        assert!(c.iter().all(|&x| x == 100));
        // Non-divisible case differs by at most one.
        let c = zipf_counts(1003, 10, 0.0);
        assert!(c.iter().all(|&x| x == 100 || x == 101));
        assert_eq!(c.iter().sum::<u64>(), 1003);
    }

    #[test]
    fn counts_are_nonincreasing_in_rank() {
        let c = zipf_counts(100_000, 1000, 0.86);
        for w in c.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn eighty_twenty_shape_for_theta_086() {
        // Knuth: theta = 0.86 approximates "80% of accesses touch 20% of
        // items". Check the top 20% of ranks hold roughly 80% of records.
        let n = 1_000_000u64;
        let i = 10_000u64;
        let c = zipf_counts(n, i, 0.86);
        let top: u64 = c.iter().take((i / 5) as usize).sum();
        let share = top as f64 / n as f64;
        assert!(
            (0.70..0.90).contains(&share),
            "top-20% share {share} not 80-20-like"
        );
    }

    #[test]
    fn higher_theta_is_more_skewed() {
        let flat = zipf_counts(100_000, 100, 0.3);
        let steep = zipf_counts(100_000, 100, 1.5);
        assert!(steep[0] > flat[0]);
        assert!(steep[99] < flat[99]);
    }

    #[test]
    fn shuffled_counts_preserve_multiset() {
        let mut rng = Rng::new(5);
        let base = zipf_counts(10_000, 64, 0.86);
        let mut shuf = shuffled_counts(10_000, 64, 0.86, &mut rng);
        assert_ne!(shuf, base, "shuffle should move something");
        shuf.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(shuf, base);
    }

    #[test]
    fn n_equals_distinct_gives_all_ones() {
        let c = zipf_counts(42, 42, 0.86);
        assert!(c.iter().all(|&x| x == 1));
    }

    #[test]
    #[should_panic(expected = "at least one record per distinct value")]
    fn n_below_distinct_panics() {
        zipf_counts(5, 10, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one distinct value")]
    fn zero_distinct_panics() {
        zipf_counts(5, 0, 0.0);
    }
}
