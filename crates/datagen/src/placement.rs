//! Windowed clustering placement of records onto pages (§5.2).
//!
//! "The distinct values are processed in the order of their values. For each
//! distinct value, its corresponding records are assigned to pages as
//! follows. A window of pages is available and the records are assigned
//! randomly in this window of pages. The smaller the window, the greater the
//! degree of clustering. The window size is given by ⌈K·T⌉. ... When a page
//! is full in the window, the next page not in the window is added to the
//! window. The initial window is [1, K·T]. ... A record is assigned outside
//! the window with a certain probability given by a noise factor. In our
//! experiments, the noise factor was set to 5%."
//!
//! `K = 0` degenerates to a one-page window (sequential fill — a perfectly
//! clustered index, up to noise); `K = 1` makes every page eligible
//! (uniform random placement — fully unclustered).

use crate::rng::Rng;

/// Placement parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementConfig {
    /// Records per page (the paper's `R`); every page has this capacity.
    pub records_per_page: u32,
    /// Window size as a fraction of the table (`K ∈ [0, 1]`).
    pub window_fraction: f64,
    /// Probability a record is placed outside the window (paper: 0.05).
    pub noise: f64,
}

impl PlacementConfig {
    /// Paper defaults: 5% noise.
    pub fn new(records_per_page: u32, window_fraction: f64) -> Self {
        PlacementConfig {
            records_per_page,
            window_fraction,
            noise: 0.05,
        }
    }

    fn validate(&self) {
        assert!(self.records_per_page > 0, "records_per_page must be > 0");
        assert!(
            (0.0..=1.0).contains(&self.window_fraction),
            "window_fraction must be in [0, 1]"
        );
        assert!((0.0..=1.0).contains(&self.noise), "noise must be in [0, 1]");
    }
}

/// The result of a placement: the page (0-based ordinal) of every record in
/// key-sequence order, plus the table size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Page ordinal per record, in the order records were generated
    /// (key-sequence order).
    pub pages: Vec<u32>,
    /// Number of pages in the table (`T = ⌈N / R⌉`).
    pub table_pages: u32,
}

/// A set of page ids supporting O(1) insert, remove, and uniform sampling.
struct PageSet {
    items: Vec<u32>,
    pos: Vec<u32>, // page -> index in items, or NONE
}

const NONE: u32 = u32::MAX;

impl PageSet {
    fn new(universe: u32) -> Self {
        PageSet {
            items: Vec::new(),
            pos: vec![NONE; universe as usize],
        }
    }

    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn contains(&self, page: u32) -> bool {
        self.pos[page as usize] != NONE
    }

    fn insert(&mut self, page: u32) {
        debug_assert!(!self.contains(page));
        self.pos[page as usize] = self.items.len() as u32;
        self.items.push(page);
    }

    fn remove(&mut self, page: u32) {
        let i = self.pos[page as usize];
        debug_assert_ne!(i, NONE);
        let last = *self.items.last().unwrap();
        self.items[i as usize] = last;
        self.pos[last as usize] = i;
        self.items.pop();
        self.pos[page as usize] = NONE;
    }

    fn sample(&self, rng: &mut Rng) -> u32 {
        debug_assert!(!self.is_empty());
        self.items[rng.gen_range(self.items.len() as u64) as usize]
    }
}

/// Places `counts.iter().sum()` records (processed per distinct value in key
/// order) onto `⌈N / R⌉` pages with the windowed scheme.
///
/// # Panics
/// Panics on invalid configuration or an empty record set.
pub fn place(counts: &[u64], cfg: &PlacementConfig, rng: &mut Rng) -> Placement {
    cfg.validate();
    let n: u64 = counts.iter().sum();
    assert!(n > 0, "cannot place zero records");
    let r = cfg.records_per_page as u64;
    let t = n.div_ceil(r);
    assert!(t <= u32::MAX as u64, "table too large");
    let t = t as u32;

    let window_size = ((cfg.window_fraction * t as f64).ceil() as u32).clamp(1, t);

    let mut fill = vec![0u32; t as usize];
    let mut window = PageSet::new(t);
    let mut outside = PageSet::new(t);
    for p in 0..window_size {
        window.insert(p);
    }
    for p in window_size..t {
        outside.insert(p);
    }
    // Lowest-numbered page that has never been promoted into the window;
    // promotions slide forward from here.
    let mut next_candidate = window_size;

    let mut pages = Vec::with_capacity(n as usize);
    for &count in counts {
        for _ in 0..count {
            let use_noise = cfg.noise > 0.0 && !outside.is_empty() && rng.gen_bool(cfg.noise);
            let page = if use_noise {
                outside.sample(rng)
            } else {
                if window.is_empty() {
                    promote(&mut window, &mut outside, &mut next_candidate, t);
                }
                debug_assert!(!window.is_empty(), "no free page for a record");
                window.sample(rng)
            };
            pages.push(page);
            fill[page as usize] += 1;
            if u64::from(fill[page as usize]) == r {
                if window.contains(page) {
                    window.remove(page);
                    promote(&mut window, &mut outside, &mut next_candidate, t);
                } else {
                    outside.remove(page);
                }
            }
        }
    }
    debug_assert_eq!(pages.len() as u64, n);
    Placement {
        pages,
        table_pages: t,
    }
}

/// Adds "the next page not in the window" to the window: the
/// lowest-numbered never-promoted page that still has room; if the forward
/// scan is exhausted, any remaining outside page.
fn promote(window: &mut PageSet, outside: &mut PageSet, next_candidate: &mut u32, t: u32) {
    while *next_candidate < t {
        let p = *next_candidate;
        *next_candidate += 1;
        if outside.contains(p) {
            outside.remove(p);
            window.insert(p);
            return;
        }
        // Page p was filled by noise (already removed from `outside`) or was
        // part of the initial window; keep scanning.
    }
    // Forward scan exhausted: recycle any outside page with space.
    if !outside.is_empty() {
        let p = outside.items[0];
        outside.remove(p);
        window.insert(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(n: u64, r: u32, k: f64, noise: f64, seed: u64) -> Placement {
        let counts = vec![1u64; n as usize];
        let cfg = PlacementConfig {
            records_per_page: r,
            window_fraction: k,
            noise,
        };
        place(&counts, &cfg, &mut Rng::new(seed))
    }

    fn fills(p: &Placement) -> Vec<u32> {
        let mut f = vec![0u32; p.table_pages as usize];
        for &pg in &p.pages {
            f[pg as usize] += 1;
        }
        f
    }

    #[test]
    fn every_record_is_placed_and_capacity_respected() {
        let p = run(1000, 7, 0.2, 0.05, 1);
        assert_eq!(p.pages.len(), 1000);
        assert_eq!(p.table_pages, 143); // ceil(1000/7)
        for (pg, &f) in fills(&p).iter().enumerate() {
            assert!(f <= 7, "page {pg} overfilled: {f}");
        }
    }

    #[test]
    fn all_pages_used_when_capacity_is_tight() {
        // N == T * R exactly: every page must be completely full.
        let p = run(700, 7, 0.3, 0.05, 2);
        assert!(fills(&p).iter().all(|&f| f == 7));
    }

    #[test]
    fn k_zero_no_noise_is_sequential() {
        let p = run(100, 10, 0.0, 0.0, 3);
        let expect: Vec<u32> = (0..100u32).map(|i| i / 10).collect();
        assert_eq!(p.pages, expect);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(500, 5, 0.3, 0.05, 42);
        let b = run(500, 5, 0.3, 0.05, 42);
        assert_eq!(a, b);
        let c = run(500, 5, 0.3, 0.05, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn smaller_window_means_more_clustering() {
        // Measure disorder as LRU fetches with a small buffer (the paper's
        // own notion): a window that fits in the buffer re-hits its pages, a
        // wide one thrashes.
        let fetches = |p: &Placement| epfis_lrusim::simulate_lru(&p.pages, 12);
        let tight = run(5000, 10, 0.02, 0.0, 7); // window = 10 pages <= 12
        let loose = run(5000, 10, 0.8, 0.0, 7);
        assert!(
            fetches(&tight) * 2 < fetches(&loose),
            "tight {} vs loose {}",
            fetches(&tight),
            fetches(&loose)
        );
    }

    #[test]
    fn k_one_touches_pages_far_apart_early() {
        let p = run(2000, 10, 1.0, 0.0, 11);
        // In the first 100 records we should see pages from across the whole
        // table, not just the front.
        let max_early = p.pages[..100].iter().max().copied().unwrap();
        assert!(max_early > p.table_pages / 2);
    }

    #[test]
    fn noise_places_records_outside_initial_window() {
        // Tiny window, high noise: early records should land beyond the
        // window front.
        let p = run(1000, 10, 0.01, 0.5, 13);
        let early_outside = p.pages[..50].iter().filter(|&&pg| pg >= 2).count();
        assert!(early_outside > 5);
    }

    #[test]
    fn multi_record_values_share_window() {
        let counts = vec![50u64; 20];
        let cfg = PlacementConfig::new(10, 0.1);
        let p = place(&counts, &cfg, &mut Rng::new(17));
        assert_eq!(p.pages.len(), 1000);
        assert_eq!(p.table_pages, 100);
    }

    #[test]
    fn single_page_table() {
        let p = run(5, 10, 0.5, 0.05, 19);
        assert_eq!(p.table_pages, 1);
        assert!(p.pages.iter().all(|&pg| pg == 0));
    }

    #[test]
    #[should_panic(expected = "zero records")]
    fn empty_counts_panic() {
        place(&[], &PlacementConfig::new(10, 0.5), &mut Rng::new(1));
    }

    #[test]
    #[should_panic(expected = "window_fraction")]
    fn bad_window_fraction_panics() {
        place(&[1], &PlacementConfig::new(10, 1.5), &mut Rng::new(1));
    }
}
