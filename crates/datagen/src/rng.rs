//! A small deterministic PRNG: xoshiro256++ seeded via splitmix64.
//!
//! The experiment harness must regenerate every dataset, placement, and scan
//! workload bit-identically from a printed seed, across platforms and crate
//! versions — so the generator is implemented here (public-domain algorithms
//! by Blackman & Vigna / Steele et al.) rather than taken from a dependency
//! whose stream might change.

/// xoshiro256++ pseudo-random generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next 64 raw bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift with
    /// rejection (unbiased).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)` (`usize` convenience).
    #[inline]
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.gen_range((hi - lo) as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped into `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range((i + 1) as u64) as usize;
            xs.swap(i, j);
        }
    }

    /// Derives an independent child generator (for parallel sub-streams).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut r = Rng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(r.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut r = Rng::new(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.gen_range(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = Rng::new(3);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[r.gen_range(8) as usize] += 1;
        }
        let expect = n as f64 / 8.0;
        for c in counts {
            assert!(
                (c as f64 - expect).abs() < expect * 0.05,
                "bucket count {c} too far from {expect}"
            );
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = Rng::new(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = Rng::new(13);
        let hits = (0..50_000).filter(|_| r.gen_bool(0.05)).count();
        let rate = hits as f64 / 50_000.0;
        assert!((rate - 0.05).abs() < 0.01, "rate {rate}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(17);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn fork_streams_are_decorrelated() {
        let mut parent = Rng::new(23);
        let mut a = parent.fork();
        let mut b = parent.fork();
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_panics() {
        Rng::new(1).gen_range(0);
    }
}
