//! The per-dataset experiment pipeline.
//!
//! For one dataset: compute the one-pass [`TraceSummary`], instantiate EPFIS
//! (sharing the same exact fetch curve) and the four baselines, draw the §5
//! scan workload, measure every scan's ground-truth fetch curve, and emit
//! error-vs-buffer-size series in the exact shape of the paper's figures.

use crate::metrics::aggregate_error_percent;
use crate::report::Series;
use crate::truth::workload_truth_on;
use epfis::{EpfisConfig, EpfisEstimator, LruFit};
use epfis_datagen::{Dataset, RangeScan, ScanWorkloadConfig, WorkloadGenerator};
use epfis_estimators::{
    DcEstimator, MlEstimator, OtEstimator, PageFetchEstimator, ScanParams, SdEstimator,
    TraceSummary,
};
use epfis_lrusim::FetchCurve;
use epfis_lrusim::KeyedTrace;

/// The buffer sizes §5 sweeps: `max(300, 0.05·T)` to `0.9·T` in steps of
/// `0.05·T`. `min_buffer` defaults to the paper's 300 but is overridable for
/// scaled-down runs.
pub fn paper_buffer_grid(table_pages: u64, min_buffer: u64) -> Vec<u64> {
    let step = ((0.05 * table_pages as f64).ceil() as u64).max(1);
    let hi = ((0.9 * table_pages as f64) as u64).max(1);
    let lo = step.max(min_buffer).min(hi);
    let mut out = Vec::new();
    let mut b = lo;
    while b <= hi {
        out.push(b);
        b += step;
    }
    if out.is_empty() {
        out.push(hi);
    }
    out
}

/// A fully-prepared experiment over one dataset (or raw keyed trace).
///
/// Estimator boxes are `Send + Sync` (every estimator is plain fitted data)
/// so estimation and error sweeps can fan out across threads.
pub struct DatasetExperiment {
    trace: KeyedTrace,
    summary: TraceSummary,
    estimators: Vec<Box<dyn PageFetchEstimator + Send + Sync>>,
    scans: Vec<RangeScan>,
    truths: Vec<FetchCurve>,
}

impl DatasetExperiment {
    /// Builds the pipeline from a generated dataset.
    pub fn build(
        dataset: Dataset,
        workload: &ScanWorkloadConfig,
        epfis_config: EpfisConfig,
    ) -> Self {
        Self::build_from_trace(dataset.trace().clone(), workload, epfis_config)
    }

    /// Builds the pipeline from any keyed trace (e.g. one captured from a
    /// live system): one stack pass for statistics, workload generation,
    /// and per-scan ground truth.
    pub fn build_from_trace(
        trace: KeyedTrace,
        workload: &ScanWorkloadConfig,
        epfis_config: EpfisConfig,
    ) -> Self {
        let summary = TraceSummary::from_trace(&trace);
        let stats = LruFit::new(epfis_config).collect_from_curve(
            &summary.fetch_curve,
            summary.table_pages,
            summary.records,
            summary.distinct_keys,
        );
        let estimators: Vec<Box<dyn PageFetchEstimator + Send + Sync>> = vec![
            Box::new(EpfisEstimator::new(stats)),
            Box::new(MlEstimator::from_summary(&summary)),
            Box::new(DcEstimator::from_summary(&summary)),
            Box::new(SdEstimator::from_summary(&summary)),
            Box::new(OtEstimator::from_summary(&summary)),
        ];
        let mut generator = WorkloadGenerator::new(&trace, workload.seed);
        let scans = generator.generate(workload);
        let truths = workload_truth_on(&trace, &scans);
        DatasetExperiment {
            trace,
            summary,
            estimators,
            scans,
            truths,
        }
    }

    /// The trace under test.
    pub fn trace(&self) -> &KeyedTrace {
        &self.trace
    }

    /// The shared one-pass statistics.
    pub fn summary(&self) -> &TraceSummary {
        &self.summary
    }

    /// The generated workload.
    pub fn scans(&self) -> &[RangeScan] {
        &self.scans
    }

    /// Algorithm names, in series order (EPFIS first).
    pub fn algorithm_names(&self) -> Vec<&'static str> {
        self.estimators.iter().map(|e| e.name()).collect()
    }

    /// All estimates of algorithm `idx` at buffer size `b`.
    ///
    /// Scans are estimated in parallel; results stay in scan order.
    pub fn estimates(&self, idx: usize, b: u64) -> Vec<f64> {
        epfis_par::par_map(&self.scans, |s| {
            let params = ScanParams::range(s.selectivity, b).with_distinct_keys(s.distinct_keys);
            self.estimators[idx].estimate(&params)
        })
    }

    /// All ground-truth fetch counts at buffer size `b`.
    pub fn actuals(&self, b: u64) -> Vec<f64> {
        self.truths.iter().map(|c| c.fetches(b) as f64).collect()
    }

    /// The paper's error metric (percent) for algorithm `idx` at buffer `b`.
    pub fn error_percent(&self, idx: usize, b: u64) -> f64 {
        aggregate_error_percent(&self.estimates(idx, b), &self.actuals(b))
    }

    /// Error-vs-buffer series for every algorithm, with the x-axis expressed
    /// as a percentage of `T` (matching the figures). Values with magnitude
    /// above `clip_percent` are clipped to `None` (the paper's plots clip
    /// DC/OT around 100%); pass `f64::INFINITY` to keep everything.
    pub fn error_series(&self, buffers: &[u64], clip_percent: f64) -> Vec<Series> {
        let t = self.summary.table_pages as f64;
        // One task per (algorithm, buffer) grid point; index-ordered results
        // reassemble into per-algorithm series identical to a serial sweep.
        let n_b = buffers.len();
        let grid = epfis_par::run_indexed(self.estimators.len() * n_b, |k| {
            let (idx, b) = (k / n_b, buffers[k % n_b]);
            let x = 100.0 * b as f64 / t;
            let e = self.error_percent(idx, b);
            (x, (e.abs() <= clip_percent).then_some(e))
        });
        self.estimators
            .iter()
            .enumerate()
            .map(|(idx, est)| Series {
                name: est.name().to_string(),
                points: grid[idx * n_b..(idx + 1) * n_b].to_vec(),
            })
            .collect()
    }

    /// Maximum |error%| per algorithm over a buffer sweep (the §5 summary
    /// numbers), unclipped.
    pub fn max_abs_error(&self, buffers: &[u64]) -> Vec<(String, f64)> {
        let n_b = buffers.len();
        let grid = epfis_par::run_indexed(self.estimators.len() * n_b, |k| {
            self.error_percent(k / n_b, buffers[k % n_b]).abs()
        });
        self.estimators
            .iter()
            .enumerate()
            .map(|(idx, est)| {
                let worst = grid[idx * n_b..(idx + 1) * n_b]
                    .iter()
                    .copied()
                    .fold(0.0f64, f64::max);
                (est.name().to_string(), worst)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epfis_datagen::DatasetSpec;

    fn experiment(k: f64) -> DatasetExperiment {
        let spec = DatasetSpec::synthetic(20_000, 400, 20, 0.0, k);
        let workload = ScanWorkloadConfig {
            scans: 60,
            small_fraction: 0.5,
            seed: 11,
        };
        DatasetExperiment::build(Dataset::generate(spec), &workload, EpfisConfig::default())
    }

    #[test]
    fn paper_grid_shape() {
        // T = 25_000: lo = max(300, 1250) = 1250, hi = 22_500, step 1250.
        let g = paper_buffer_grid(25_000, 300);
        assert_eq!(g[0], 1250);
        assert_eq!(*g.last().unwrap(), 22_500);
        assert_eq!(g.len(), 18);
        // Small table: min buffer 300 dominates.
        let g = paper_buffer_grid(774, 300);
        assert_eq!(g[0], 300);
        assert!(*g.last().unwrap() <= (0.9 * 774.0) as u64);
    }

    #[test]
    fn grid_never_empty_even_for_tiny_tables() {
        let g = paper_buffer_grid(10, 300);
        assert!(!g.is_empty());
        assert!(g[0] >= 1);
    }

    #[test]
    fn pipeline_produces_five_algorithms() {
        let e = experiment(0.5);
        assert_eq!(e.algorithm_names(), vec!["EPFIS", "ML", "DC", "SD", "OT"]);
        assert_eq!(e.scans().len(), 60);
    }

    #[test]
    fn epfis_error_is_small_across_buffers() {
        let e = experiment(0.5);
        let t = e.summary().table_pages;
        let buffers = paper_buffer_grid(t, 40);
        for &b in &buffers {
            let err = e.error_percent(0, b);
            assert!(
                err.abs() < 60.0,
                "EPFIS error {err}% at B={b} is out of family"
            );
        }
    }

    #[test]
    fn epfis_beats_every_baseline_on_aggregate_worst_case() {
        // The paper's headline: EPFIS dominates. At test scale allow ties.
        let e = experiment(0.5);
        let t = e.summary().table_pages;
        let buffers = paper_buffer_grid(t, 40);
        let maxes = e.max_abs_error(&buffers);
        let epfis = maxes[0].1;
        for (name, worst) in &maxes[1..] {
            assert!(
                epfis <= *worst + 1.0,
                "EPFIS worst {epfis}% vs {name} worst {worst}%"
            );
        }
    }

    #[test]
    fn series_share_x_grid_and_clip() {
        let e = experiment(1.0);
        let buffers = paper_buffer_grid(e.summary().table_pages, 40);
        let series = e.error_series(&buffers, 100.0);
        assert_eq!(series.len(), 5);
        for s in &series {
            assert_eq!(s.points.len(), buffers.len());
            for (p, q) in s.points.iter().zip(&series[0].points) {
                assert_eq!(p.0, q.0, "shared x grid");
            }
            for (_, y) in &s.points {
                if let Some(y) = y {
                    assert!(y.abs() <= 100.0);
                }
            }
        }
    }

    #[test]
    fn estimates_and_actuals_align_with_scan_count() {
        let e = experiment(0.05);
        let b = 100;
        assert_eq!(e.estimates(0, b).len(), 60);
        assert_eq!(e.actuals(b).len(), 60);
        // Actuals are sane: between distinct pages and record count.
        for (s, a) in e.scans().iter().zip(e.actuals(b)) {
            assert!(a >= 1.0);
            assert!(a <= s.records as f64);
        }
    }
}
