//! Ground-truth measurement of page fetches.
//!
//! "Let the actual number of pages fetched be denoted by a_i" (§5): the
//! actual cost of scan `i` at buffer size `B` is the miss count of an LRU
//! simulation over that scan's data-page reference sequence, starting cold.
//! One stack pass per scan produces the entire function `a_i(B)` at once,
//! so sweeping the 12+ buffer sizes of a figure costs nothing extra.
//!
//! Per-scan truth is embarrassingly parallel: every scan analyzes its own
//! slice of the trace independently, so [`workload_truth_on`] fans the scans
//! out across threads (index-ordered collection keeps the result, and hence
//! every downstream artifact, identical to the serial order).

use epfis_datagen::{Dataset, RangeScan};
use epfis_lrusim::{analyze_trace, FetchCurve, KeyedTrace};

/// The exact fetch curve of one partial scan over a keyed trace.
pub fn scan_truth_on(trace: &KeyedTrace, scan: &RangeScan) -> FetchCurve {
    let slice = trace.scan_slice(scan.key_lo, scan.key_hi);
    analyze_trace(slice).fetch_curve()
}

/// The exact fetch curve of one partial scan over `dataset`.
pub fn scan_truth(dataset: &Dataset, scan: &RangeScan) -> FetchCurve {
    scan_truth_on(dataset.trace(), scan)
}

/// Exact fetch curves for a whole workload over a keyed trace.
///
/// Scans are measured in parallel (see `epfis_par` for the thread budget);
/// results come back in scan order, so output is identical to a serial run.
pub fn workload_truth_on(trace: &KeyedTrace, scans: &[RangeScan]) -> Vec<FetchCurve> {
    epfis_par::par_map(scans, |s| scan_truth_on(trace, s))
}

/// Exact fetch curves for a whole workload.
pub fn workload_truth(dataset: &Dataset, scans: &[RangeScan]) -> Vec<FetchCurve> {
    workload_truth_on(dataset.trace(), scans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epfis_datagen::{DatasetSpec, ScanKind, WorkloadGenerator};
    use epfis_lrusim::simulate_lru;

    fn dataset() -> Dataset {
        Dataset::generate(DatasetSpec::synthetic(4000, 80, 20, 0.0, 0.3))
    }

    #[test]
    fn truth_matches_exact_lru_simulation() {
        let d = dataset();
        let mut w = WorkloadGenerator::new(d.trace(), 5);
        for _ in 0..5 {
            let scan = w.draw(ScanKind::Small);
            let slice = d.trace().scan_slice(scan.key_lo, scan.key_hi);
            let curve = scan_truth(&d, &scan);
            for cap in [1usize, 3, 12, 40] {
                assert_eq!(curve.fetches(cap as u64), simulate_lru(slice, cap));
            }
        }
    }

    #[test]
    fn full_scan_truth_covers_whole_trace() {
        let d = dataset();
        let mut w = WorkloadGenerator::new(d.trace(), 6);
        let full = w.scan_with_fraction(1.0, ScanKind::Large);
        let curve = scan_truth(&d, &full);
        assert_eq!(curve.total(), d.records());
        // A big enough buffer leaves only cold misses = distinct pages.
        assert_eq!(
            curve.fetches(d.table_pages() as u64),
            d.trace().distinct_pages()
        );
    }

    #[test]
    fn workload_truth_is_one_curve_per_scan() {
        let d = dataset();
        let mut w = WorkloadGenerator::new(d.trace(), 7);
        let scans: Vec<_> = (0..8).map(|_| w.draw(ScanKind::Large)).collect();
        let truths = workload_truth(&d, &scans);
        assert_eq!(truths.len(), 8);
        for (s, c) in scans.iter().zip(&truths) {
            assert_eq!(c.total(), s.records);
        }
    }
}
