//! The paper's error metric (§5).
//!
//! "For any scan i, let the estimate obtained by the algorithm be denoted by
//! e_i. Let the actual number of pages fetched be denoted by a_i. Then, the
//! error metric is Σ(e_i − a_i) / Σ a_i" — the *relative error over the
//! aggregate of all the scans*, chosen over mean-relative-error because for
//! the optimizer it is the absolute differences that matter.

/// Aggregate signed relative error `Σ(e_i − a_i) / Σ a_i`.
///
/// # Panics
/// Panics if the slices differ in length, are empty, or the actuals sum to
/// zero.
pub fn aggregate_error(estimates: &[f64], actuals: &[f64]) -> f64 {
    assert_eq!(
        estimates.len(),
        actuals.len(),
        "estimate/actual count mismatch"
    );
    assert!(!actuals.is_empty(), "need at least one scan");
    let num: f64 = estimates.iter().zip(actuals).map(|(e, a)| e - a).sum();
    let den: f64 = actuals.iter().sum();
    assert!(den > 0.0, "actual fetches must be positive");
    num / den
}

/// The same metric expressed in percent (matching the figures' Y axes).
pub fn aggregate_error_percent(estimates: &[f64], actuals: &[f64]) -> f64 {
    100.0 * aggregate_error(estimates, actuals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_estimates_have_zero_error() {
        assert_eq!(aggregate_error(&[5.0, 10.0], &[5.0, 10.0]), 0.0);
    }

    #[test]
    fn overestimate_is_positive_underestimate_negative() {
        assert!(aggregate_error(&[12.0], &[10.0]) > 0.0);
        assert!(aggregate_error(&[8.0], &[10.0]) < 0.0);
    }

    #[test]
    fn metric_is_aggregate_not_mean_of_ratios() {
        // One tiny scan with a huge relative error, one big scan estimated
        // perfectly: the aggregate metric stays small, unlike a mean of
        // per-scan relative errors.
        let estimates = [10.0, 1000.0];
        let actuals = [1.0, 1000.0];
        let agg = aggregate_error(&estimates, &actuals);
        assert!((agg - 9.0 / 1001.0).abs() < 1e-12);
        let mean_rel = ((10.0 - 1.0) / 1.0 + (1000.0 - 1000.0f64) / 1000.0) / 2.0;
        assert!(mean_rel > 4.0, "mean-of-ratios would explode: {mean_rel}");
    }

    #[test]
    fn percent_variant_scales_by_100() {
        assert!((aggregate_error_percent(&[11.0], &[10.0]) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn signed_errors_can_cancel() {
        // The paper's metric is signed; symmetric over/under cancels.
        assert_eq!(aggregate_error(&[8.0, 12.0], &[10.0, 10.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn length_mismatch_panics() {
        aggregate_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_panics() {
        aggregate_error(&[], &[]);
    }
}
