//! Experiment harness (Section 5 of the paper).
//!
//! * [`truth`] — ground-truth page-fetch measurement: one Mattson stack pass
//!   per scan yields the *exact* LRU fetch count at every buffer size, which
//!   is precisely what the paper's per-scan LRU simulations measure.
//! * [`metrics`] — the paper's aggregate error metric
//!   `Σ(e_i − a_i) / Σ a_i` over a scan workload.
//! * [`experiment`] — the per-dataset pipeline: generate → summarize in one
//!   pass → instantiate EPFIS + the four baselines → draw the 200-scan
//!   workload → measure truths → produce error-vs-buffer-size series.
//! * [`figures`] — drivers for each published figure/table: Figure 1 (FPF
//!   curves), Figures 2–9 (GWL error behaviour), Figures 10–21 (synthetic
//!   matrix), Tables 2–3, and the §4.1 segment-count sensitivity study.
//! * [`report`] — plain-text and CSV rendering of figure data.

pub mod experiment;
pub mod figures;
pub mod metrics;
pub mod report;
pub mod truth;

pub use experiment::DatasetExperiment;
pub use metrics::aggregate_error;
pub use report::{FigureData, Series};
pub use truth::scan_truth;
