//! Rendering figure data as aligned text tables and CSV.

/// One named series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series label (algorithm or column name).
    pub name: String,
    /// Points in ascending `x`. A `None` y marks a value outside the
    /// figure's plotted range (the paper clips some DC/OT points).
    pub points: Vec<(f64, Option<f64>)>,
}

impl Series {
    /// Builds a series from dense points.
    pub fn dense(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points: points.into_iter().map(|(x, y)| (x, Some(y))).collect(),
        }
    }

    /// Largest |y| over the series (ignoring clipped points).
    pub fn max_abs_y(&self) -> f64 {
        self.points
            .iter()
            .filter_map(|(_, y)| *y)
            .fold(0.0f64, |m, y| m.max(y.abs()))
    }
}

/// A figure: titled, labeled, multi-series data.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureData {
    /// Figure title, e.g. `Figure 12: error behavior for theta=0, K=0.10`.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series. All series share the same x grid.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Per-series maximum |y| — the "maximum error" summaries §5 reports.
    pub fn max_abs_by_series(&self) -> Vec<(String, f64)> {
        self.series
            .iter()
            .map(|s| (s.name.clone(), s.max_abs_y()))
            .collect()
    }

    /// Renders an aligned text table (x column, one column per series).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        let mut header = vec![self.x_label.clone()];
        header.extend(self.series.iter().map(|s| s.name.clone()));
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|p| p.0).collect())
            .unwrap_or_default();
        let mut rows: Vec<Vec<String>> = vec![header];
        for (i, x) in xs.iter().enumerate() {
            let mut row = vec![format!("{x:.2}")];
            for s in &self.series {
                row.push(match s.points.get(i).and_then(|p| p.1) {
                    Some(y) => format!("{y:.2}"),
                    None => "-".to_string(),
                });
            }
            rows.push(row);
        }
        let cols = rows[0].len();
        let widths: Vec<usize> = (0..cols)
            .map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        for row in &rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(c, cell)| format!("{cell:>width$}", width = widths[c]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out.push_str(&format!("({} vs {})\n", self.y_label, self.x_label));
        out
    }

    /// Renders CSV (header row, then one row per x).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let mut header = vec![self.x_label.clone()];
        header.extend(self.series.iter().map(|s| s.name.clone()));
        out.push_str(&header.join(","));
        out.push('\n');
        let xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|p| p.0).collect())
            .unwrap_or_default();
        for (i, x) in xs.iter().enumerate() {
            let mut row = vec![format!("{x}")];
            for s in &self.series {
                row.push(match s.points.get(i).and_then(|p| p.1) {
                    Some(y) => format!("{y}"),
                    None => String::new(),
                });
            }
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Renders a free-form two-dimensional table with a header row.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut all: Vec<Vec<String>> = vec![header.iter().map(|s| s.to_string()).collect()];
    all.extend(rows.iter().cloned());
    let cols = header.len();
    let widths: Vec<usize> = (0..cols)
        .map(|c| {
            all.iter()
                .map(|r| r.get(c).map_or(0, |s| s.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let mut out = format!("# {title}\n");
    for (i, row) in all.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(c, cell)| format!("{cell:>width$}", width = widths[c]))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
        if i == 0 {
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> FigureData {
        FigureData {
            title: "demo".into(),
            x_label: "B%".into(),
            y_label: "error%".into(),
            series: vec![
                Series::dense("EPFIS", vec![(5.0, 1.0), (10.0, -2.0)]),
                Series {
                    name: "DC".into(),
                    points: vec![(5.0, Some(250.0)), (10.0, None)],
                },
            ],
        }
    }

    #[test]
    fn max_abs_ignores_clipped_points() {
        let f = fig();
        let m = f.max_abs_by_series();
        assert_eq!(m[0], ("EPFIS".to_string(), 2.0));
        assert_eq!(m[1], ("DC".to_string(), 250.0));
    }

    #[test]
    fn table_has_header_and_all_rows() {
        let t = fig().to_table();
        assert!(t.contains("EPFIS"));
        assert!(t.contains("DC"));
        assert!(t.lines().count() >= 4);
        assert!(t.contains('-'), "clipped point renders as dash");
    }

    #[test]
    fn csv_round_trips_values() {
        let c = fig().to_csv();
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines[0], "B%,EPFIS,DC");
        assert_eq!(lines[1], "5,1,250");
        assert_eq!(lines[2], "10,-2,");
    }

    #[test]
    fn render_table_aligns_columns() {
        let out = render_table(
            "Table 2",
            &["Table", "Pages"],
            &[
                vec!["CMAC".into(), "774".into()],
                vec!["PLON".into(), "4857".into()],
            ],
        );
        assert!(out.contains("Table 2"));
        assert!(out.contains("CMAC"));
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5); // title, header, rule, 2 rows
    }

    #[test]
    fn empty_figure_renders() {
        let f = FigureData {
            title: "empty".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![],
        };
        assert!(f.to_table().contains("empty"));
        assert_eq!(f.max_abs_by_series().len(), 0);
    }
}
