//! Drivers for every table and figure in the paper's evaluation.
//!
//! Each driver is a pure function of its parameters (including seeds), so
//! EXPERIMENTS.md can cite exact reproduction commands. GWL columns are
//! synthesized stand-ins matched to Tables 2–3 (see DESIGN.md §2); a
//! `scale` divisor shrinks them proportionally for quick runs.

use crate::experiment::{paper_buffer_grid, DatasetExperiment};
use crate::report::{render_table, FigureData, Series};
use epfis::{EpfisConfig, LruFit, ScanQuery};
use epfis_datagen::{
    synthesize_gwl_column, Dataset, DatasetSpec, ScanWorkloadConfig, WorkloadGenerator, GWL_COLUMNS,
};
use epfis_estimators::TraceSummary;
use epfis_lrusim::analyze_trace;

/// Default experiment seed (any fixed value regenerates the figures
/// bit-identically).
pub const DEFAULT_SEED: u64 = 0x5EED_EF15;

/// The five columns whose FPF curves Figure 1 shows.
pub const FIG1_COLUMNS: [&str; 5] = [
    "CMAC.BRAN",
    "CMAC.CEDT",
    "INAP.APLD",
    "INAP.MALD",
    "INAP.UWID",
];

/// Figure 1: FPF curves — `F` (in multiples of `T`) versus `B` (as a
/// fraction of `T`) for five GWL columns.
pub fn fig1(scale: u32, seed: u64) -> FigureData {
    let fractions: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
    let mut series = Vec::new();
    for name in FIG1_COLUMNS {
        let col = lookup(name).scaled_down(scale);
        let (dataset, _) = synthesize_gwl_column(&col, seed);
        let curve = analyze_trace(dataset.trace().pages()).fetch_curve();
        let t = dataset.table_pages() as f64;
        let points: Vec<(f64, f64)> = fractions
            .iter()
            .map(|&f| {
                let b = ((f * t).round() as u64).max(1);
                (f, curve.fetches(b) as f64 / t)
            })
            .collect();
        series.push(Series::dense(name, points));
    }
    FigureData {
        title: format!("Figure 1: FPF curves for GWL indexes (scale 1/{scale})"),
        x_label: "B/T".into(),
        y_label: "F/T".into(),
        series,
    }
}

/// The workload of §5: 200 scans, 50/50 small/large.
pub fn paper_workload(seed: u64) -> ScanWorkloadConfig {
    ScanWorkloadConfig {
        scans: 200,
        small_fraction: 0.5,
        seed,
    }
}

fn lookup(name: &str) -> epfis_datagen::GwlColumn {
    epfis_datagen::gwl::gwl_column(name).unwrap_or_else(|| panic!("unknown GWL column {name:?}"))
}

/// One of Figures 2–9: error behaviour of the five algorithms on a GWL
/// column. `min_buffer` is the paper's 300 at full scale; scale it down
/// together with the dataset.
pub fn gwl_error_figure(
    figure_no: usize,
    column: &str,
    scale: u32,
    min_buffer: u64,
    seed: u64,
) -> (FigureData, Vec<(String, f64)>) {
    let col = lookup(column).scaled_down(scale);
    let (dataset, _) = synthesize_gwl_column(&col, seed);
    let exp = DatasetExperiment::build(dataset, &paper_workload(seed), EpfisConfig::default());
    let buffers = paper_buffer_grid(exp.summary().table_pages, min_buffer);
    let series = exp.error_series(&buffers, 100.0);
    let maxes = exp.max_abs_error(&buffers);
    (
        FigureData {
            title: format!("Figure {figure_no}: error behavior for {column} (scale 1/{scale})"),
            x_label: "B as % of T".into(),
            y_label: "error %".into(),
            series,
        },
        maxes,
    )
}

/// Figures 2–9 in order, with their per-algorithm maximum errors.
///
/// The eight columns are independent experiments, so they run in parallel;
/// index-ordered collection keeps the output identical to a serial run.
pub fn gwl_all(scale: u32, min_buffer: u64, seed: u64) -> Vec<(FigureData, Vec<(String, f64)>)> {
    epfis_par::run_indexed(GWL_COLUMNS.len(), |i| {
        gwl_error_figure(i + 2, GWL_COLUMNS[i].name, scale, min_buffer, seed)
    })
}

/// Parameters of one synthetic dataset (§5.2); paper values are
/// `records = 10^6`, `distinct = 10^4`, `per_page ∈ {20, 40, 80}`.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticParams {
    /// `N`.
    pub records: u64,
    /// `I`.
    pub distinct: u64,
    /// `R`.
    pub per_page: u32,
    /// Zipf `θ` (0 or 0.86 in the paper).
    pub theta: f64,
    /// Window fraction `K`.
    pub k: f64,
    /// Minimum buffer size checked (paper: 300).
    pub min_buffer: u64,
    /// Seed.
    pub seed: u64,
}

impl SyntheticParams {
    /// The paper's full-scale configuration for `(θ, K)` with `R = 40`.
    pub fn paper(theta: f64, k: f64) -> Self {
        SyntheticParams {
            records: 1_000_000,
            distinct: 10_000,
            per_page: 40,
            theta,
            k,
            min_buffer: 300,
            seed: DEFAULT_SEED,
        }
    }

    /// A proportionally shrunken configuration (divide records/distinct by
    /// `factor`; shrink the buffer floor with the table).
    pub fn scaled(mut self, factor: u64) -> Self {
        self.records = (self.records / factor).max(1000);
        self.distinct = (self.distinct / factor).max(50);
        self.min_buffer = (self.min_buffer / factor).max(12);
        self
    }
}

/// The figure number the paper assigns to a `(θ, K)` combination
/// (Figures 10–15 for θ=0, 16–21 for θ=0.86), if it is one of the
/// published grid points.
pub fn synthetic_figure_number(theta: f64, k: f64) -> Option<usize> {
    let ks = [0.0, 0.05, 0.10, 0.20, 0.50, 1.0];
    let ki = ks.iter().position(|&x| (x - k).abs() < 1e-9)?;
    if (theta - 0.0).abs() < 1e-9 {
        Some(10 + ki)
    } else if (theta - 0.86).abs() < 1e-9 {
        Some(16 + ki)
    } else {
        None
    }
}

/// One of Figures 10–21: error behaviour on a synthetic dataset.
pub fn synthetic_error_figure(p: SyntheticParams) -> (FigureData, Vec<(String, f64)>) {
    let spec =
        DatasetSpec::synthetic(p.records, p.distinct, p.per_page, p.theta, p.k).with_seed(p.seed);
    let exp = DatasetExperiment::build(
        Dataset::generate(spec),
        &paper_workload(p.seed),
        EpfisConfig::default(),
    );
    let buffers = paper_buffer_grid(exp.summary().table_pages, p.min_buffer);
    let series = exp.error_series(&buffers, 100.0);
    let maxes = exp.max_abs_error(&buffers);
    let title = match synthetic_figure_number(p.theta, p.k) {
        Some(no) => format!(
            "Figure {no}: error behavior for theta={}, K={}",
            p.theta, p.k
        ),
        None => format!("error behavior for theta={}, K={}", p.theta, p.k),
    };
    (
        FigureData {
            title,
            x_label: "B as % of T".into(),
            y_label: "error %".into(),
            series,
        },
        maxes,
    )
}

/// Runs a batch of synthetic-dataset figures (e.g. the 12-point `(θ, K)`
/// grid behind Figures 10–21) in parallel, preserving input order.
pub fn synthetic_all(params: &[SyntheticParams]) -> Vec<(FigureData, Vec<(String, f64)>)> {
    epfis_par::par_map(params, |p| synthetic_error_figure(*p))
}

/// Tables 2 and 3: the GWL shapes and the measured clustering factors of
/// our synthesized stand-ins.
pub fn tables(scale: u32, seed: u64) -> String {
    let mut out = String::new();
    let mut t2_rows: Vec<Vec<String>> = Vec::new();
    for table in ["CMAC", "CAGD", "INAP", "PLON"] {
        let col = GWL_COLUMNS
            .iter()
            .find(|c| c.name.starts_with(table))
            .unwrap()
            .scaled_down(scale);
        t2_rows.push(vec![
            table.to_string(),
            col.pages.to_string(),
            col.records_per_page.to_string(),
        ]);
    }
    out.push_str(&render_table(
        &format!("Table 2: GWL database tables (scale 1/{scale})"),
        &["Table", "No. of Pages", "Records/Page"],
        &t2_rows,
    ));
    out.push('\n');
    let mut t3_rows: Vec<Vec<String>> = Vec::new();
    for col in &GWL_COLUMNS {
        let scaled = col.scaled_down(scale);
        let (_, measured) = synthesize_gwl_column(&scaled, seed);
        t3_rows.push(vec![
            col.name.to_string(),
            scaled.distinct.to_string(),
            format!("{:.1}", col.c_percent),
            format!("{:.1}", measured * 100.0),
        ]);
    }
    out.push_str(&render_table(
        &format!("Table 3: GWL database columns (scale 1/{scale})"),
        &["Column", "Col Card", "C (%) paper", "C (%) synthesized"],
        &t3_rows,
    ));
    out
}

/// The §4.1 sensitivity study: EPFIS's worst-case |error%| as a function of
/// the number of approximating line segments.
pub fn segment_sensitivity(
    spec: DatasetSpec,
    segment_counts: &[usize],
    min_buffer: u64,
    seed: u64,
) -> FigureData {
    let dataset = Dataset::generate(spec);
    let summary = TraceSummary::from_trace(dataset.trace());
    let mut generator = WorkloadGenerator::new(dataset.trace(), seed);
    let scans = generator.generate(&paper_workload(seed));
    let truths = crate::truth::workload_truth(&dataset, &scans);
    let buffers = paper_buffer_grid(summary.table_pages, min_buffer);

    let mut points = Vec::with_capacity(segment_counts.len());
    for &segments in segment_counts {
        let cfg = EpfisConfig::default().with_segments(segments);
        let stats = LruFit::new(cfg).collect_from_curve(
            &summary.fetch_curve,
            summary.table_pages,
            summary.records,
            summary.distinct_keys,
        );
        let mut worst = 0.0f64;
        for &b in &buffers {
            let estimates: Vec<f64> = scans
                .iter()
                .map(|s| stats.estimate(&ScanQuery::range(s.selectivity, b)))
                .collect();
            let actuals: Vec<f64> = truths.iter().map(|c| c.fetches(b) as f64).collect();
            worst = worst.max(crate::metrics::aggregate_error_percent(&estimates, &actuals).abs());
        }
        points.push((segments as f64, worst));
    }
    FigureData {
        title: "Segment-count sensitivity (Section 4.1)".into(),
        x_label: "line segments".into(),
        y_label: "max |error| %".into(),
        series: vec![Series::dense("EPFIS", points)],
    }
}

/// Ablation: error-vs-buffer series of EPFIS under several configurations
/// (φ reading, correction on/off, grid strategy, segment budget) on one
/// dataset. Each configuration becomes one series.
pub fn config_ablation(
    spec: DatasetSpec,
    configs: &[(&str, EpfisConfig)],
    min_buffer: u64,
    seed: u64,
) -> FigureData {
    let dataset = Dataset::generate(spec.clone());
    let summary = TraceSummary::from_trace(dataset.trace());
    let mut generator = WorkloadGenerator::new(dataset.trace(), seed);
    let scans = generator.generate(&paper_workload(seed));
    let truths = crate::truth::workload_truth(&dataset, &scans);
    let buffers = paper_buffer_grid(summary.table_pages, min_buffer);
    let t = summary.table_pages as f64;

    // Each configuration is an independent fit + sweep; fan them out.
    let series = epfis_par::run_indexed(configs.len(), |ci| {
        let (name, cfg) = &configs[ci];
        let stats = LruFit::new(*cfg).collect_from_curve(
            &summary.fetch_curve,
            summary.table_pages,
            summary.records,
            summary.distinct_keys,
        );
        let points: Vec<(f64, f64)> = buffers
            .iter()
            .map(|&b| {
                let estimates: Vec<f64> = scans
                    .iter()
                    .map(|s| stats.estimate_with(&ScanQuery::range(s.selectivity, b), cfg))
                    .collect();
                let actuals: Vec<f64> = truths.iter().map(|c| c.fetches(b) as f64).collect();
                (
                    100.0 * b as f64 / t,
                    crate::metrics::aggregate_error_percent(&estimates, &actuals),
                )
            })
            .collect();
        Series::dense(*name, points)
    });
    FigureData {
        title: format!("EPFIS configuration ablation on {}", spec.name),
        x_label: "B as % of T".into(),
        y_label: "error %".into(),
        series,
    }
}

/// Ablation: Algorithm SD under the printed `T/I` Cardenas exponent versus
/// the `N/I` textbook reading (DESIGN.md §2).
pub fn sd_exponent_ablation(spec: DatasetSpec, min_buffer: u64, seed: u64) -> FigureData {
    use epfis_estimators::{PageFetchEstimator, ScanParams, SdEstimator, SdExponent};
    let dataset = Dataset::generate(spec.clone());
    let summary = TraceSummary::from_trace(dataset.trace());
    let mut generator = WorkloadGenerator::new(dataset.trace(), seed);
    let scans = generator.generate(&paper_workload(seed));
    let truths = crate::truth::workload_truth(&dataset, &scans);
    let buffers = paper_buffer_grid(summary.table_pages, min_buffer);
    let t = summary.table_pages as f64;

    let variants = [
        ("SD (paper T/I)", SdExponent::PaperTOverI),
        ("SD (N/I)", SdExponent::RecordsPerKey),
    ];
    let series = variants
        .iter()
        .map(|(name, exponent)| {
            let est = SdEstimator::from_summary_with(&summary, *exponent);
            let points: Vec<(f64, f64)> = buffers
                .iter()
                .map(|&b| {
                    let estimates: Vec<f64> = scans
                        .iter()
                        .map(|s| est.estimate(&ScanParams::range(s.selectivity, b)))
                        .collect();
                    let actuals: Vec<f64> = truths.iter().map(|c| c.fetches(b) as f64).collect();
                    (
                        100.0 * b as f64 / t,
                        crate::metrics::aggregate_error_percent(&estimates, &actuals),
                    )
                })
                .collect();
            Series::dense(*name, points)
        })
        .collect();
    FigureData {
        title: format!("SD exponent ablation on {}", spec.name),
        x_label: "B as % of T".into(),
        y_label: "error %".into(),
        series,
    }
}

/// Accuracy study for the §4.2 index-sargable urn model (the paper derives
/// it but does not evaluate it): sweep the sargable selectivity `S` and
/// compare Est-IO's urn-reduced estimate against measured ground truth,
/// where the ground truth filters each index entry independently with
/// probability `S` (a seeded Bernoulli per record — exactly the model's
/// premise) and stack-simulates the surviving reference sequence.
///
/// One series per buffer size; x = S, y = the aggregate error metric over a
/// workload of range scans.
pub fn sargable_accuracy(
    spec: DatasetSpec,
    buffers: &[u64],
    s_values: &[f64],
    seed: u64,
) -> FigureData {
    use epfis_datagen::Rng;
    let dataset = Dataset::generate(spec.clone());
    let summary = TraceSummary::from_trace(dataset.trace());
    let stats = LruFit::new(EpfisConfig::default()).collect_from_curve(
        &summary.fetch_curve,
        summary.table_pages,
        summary.records,
        summary.distinct_keys,
    );
    let mut generator = WorkloadGenerator::new(dataset.trace(), seed);
    let scans = generator.generate(&ScanWorkloadConfig {
        scans: 60,
        small_fraction: 0.5,
        seed,
    });

    // Every (buffer, S) grid point owns a fresh Rng seeded only from the
    // global seed and S, so fanning the grid out cannot change the numbers:
    // no RNG state crosses grid points. The per-scan loop inside a point
    // stays serial because its draws are sequential by construction.
    let n_s = s_values.len();
    let grid = epfis_par::run_indexed(buffers.len() * n_s, |idx| {
        let b = buffers[idx / n_s];
        let s = s_values[idx % n_s];
        let mut estimates = Vec::with_capacity(scans.len());
        let mut actuals = Vec::with_capacity(scans.len());
        let mut rng = Rng::new(seed ^ s.to_bits().rotate_left(17));
        for scan in &scans {
            let q = ScanQuery::range(scan.selectivity, b).with_sargable(s);
            estimates.push(stats.estimate(&q));
            let slice = dataset.trace().scan_slice(scan.key_lo, scan.key_hi);
            let filtered: Vec<u32> = slice.iter().copied().filter(|_| rng.gen_bool(s)).collect();
            actuals.push(epfis_lrusim::simulate_lru(&filtered, b as usize).max(1) as f64);
        }
        (
            s,
            crate::metrics::aggregate_error_percent(&estimates, &actuals),
        )
    });
    let series = buffers
        .iter()
        .enumerate()
        .map(|(bi, &b)| Series::dense(format!("B={b}"), grid[bi * n_s..(bi + 1) * n_s].to_vec()))
        .collect();
    FigureData {
        title: format!("sargable urn-model accuracy on {}", spec.name),
        x_label: "sargable selectivity S".into(),
        y_label: "error %".into(),
        series,
    }
}

/// Staleness study (extension): statistics collected once, data keeps
/// growing. The catalog entry is built from the dataset at its original
/// size; ground truth and true selectivities come from a grown dataset
/// (same key distribution and placement process, `growth` times more
/// records). One point per growth factor: EPFIS's worst |error| over the
/// buffer sweep.
pub fn staleness(spec: DatasetSpec, growths: &[f64], min_buffer: u64, seed: u64) -> FigureData {
    let original = Dataset::generate(spec.clone());
    let summary = TraceSummary::from_trace(original.trace());
    let stats = LruFit::new(EpfisConfig::default()).collect_from_curve(
        &summary.fetch_curve,
        summary.table_pages,
        summary.records,
        summary.distinct_keys,
    );
    // Each growth factor regenerates and measures its own dataset — the
    // expensive part — so the factors fan out in parallel.
    let points = epfis_par::par_map(growths, |&g| {
        assert!(g >= 1.0, "growth factor must be >= 1");
        let mut grown_spec = spec.clone();
        grown_spec.records = (spec.records as f64 * g) as u64;
        grown_spec.name = format!("{}+{:.0}%", spec.name, (g - 1.0) * 100.0);
        let grown = Dataset::generate(grown_spec);
        let mut generator = WorkloadGenerator::new(grown.trace(), seed);
        let scans = generator.generate(&ScanWorkloadConfig {
            scans: 60,
            small_fraction: 0.5,
            seed,
        });
        let truths = crate::truth::workload_truth(&grown, &scans);
        // The optimizer believes the stale statistics; the buffer grid also
        // comes from the stale T (that is all the catalog knows).
        let buffers = paper_buffer_grid(summary.table_pages, min_buffer);
        let mut worst = 0.0f64;
        for &b in &buffers {
            let estimates: Vec<f64> = scans
                .iter()
                .map(|s| stats.estimate(&ScanQuery::range(s.selectivity, b)))
                .collect();
            let actuals: Vec<f64> = truths.iter().map(|c| c.fetches(b) as f64).collect();
            worst = worst.max(crate::metrics::aggregate_error_percent(&estimates, &actuals).abs());
        }
        ((g - 1.0) * 100.0, worst)
    });
    FigureData {
        title: format!("statistics staleness on {}", spec.name),
        x_label: "data growth since ANALYZE (%)".into(),
        y_label: "max |error| %".into(),
        series: vec![Series::dense("EPFIS (stale stats)", points)],
    }
}

/// Sensitivity study: how well EPFIS's **LRU** model predicts fetch counts
/// when the buffer pool actually runs LRU, Clock, or FIFO. One series per
/// policy: the §5 error metric of EPFIS's (unchanged, LRU-trained)
/// estimates against that policy's measured ground truth.
///
/// FIFO and Clock lack the stack property, so their ground truths cost one
/// simulation per (scan, buffer size); keep the dataset modest.
pub fn policy_sensitivity(spec: DatasetSpec, min_buffer: u64, seed: u64) -> FigureData {
    use epfis_lrusim::{simulate_clock, simulate_fifo, simulate_lru};
    let dataset = Dataset::generate(spec.clone());
    let summary = TraceSummary::from_trace(dataset.trace());
    let stats = LruFit::new(EpfisConfig::default()).collect_from_curve(
        &summary.fetch_curve,
        summary.table_pages,
        summary.records,
        summary.distinct_keys,
    );
    let mut generator = WorkloadGenerator::new(dataset.trace(), seed);
    let scans = generator.generate(&ScanWorkloadConfig {
        scans: 60,
        small_fraction: 0.5,
        seed,
    });
    let buffers = paper_buffer_grid(summary.table_pages, min_buffer);
    let t = summary.table_pages as f64;

    type PolicySim = fn(&[u32], usize) -> u64;
    let policies: [(&str, PolicySim); 3] = [
        ("vs LRU", simulate_lru),
        ("vs Clock", simulate_clock),
        ("vs FIFO", simulate_fifo),
    ];
    // FIFO/Clock pay one full simulation per (scan, buffer), which makes
    // this the slowest figure; fan out the whole (policy, buffer) grid.
    let n_b = buffers.len();
    let grid = epfis_par::run_indexed(policies.len() * n_b, |idx| {
        let (_, simulate) = policies[idx / n_b];
        let b = buffers[idx % n_b];
        let estimates: Vec<f64> = scans
            .iter()
            .map(|s| stats.estimate(&ScanQuery::range(s.selectivity, b)))
            .collect();
        let actuals: Vec<f64> = scans
            .iter()
            .map(|s| {
                let slice = dataset.trace().scan_slice(s.key_lo, s.key_hi);
                simulate(slice, b as usize) as f64
            })
            .collect();
        (
            100.0 * b as f64 / t,
            crate::metrics::aggregate_error_percent(&estimates, &actuals),
        )
    });
    let series = policies
        .iter()
        .enumerate()
        .map(|(pi, (name, _))| Series::dense(*name, grid[pi * n_b..(pi + 1) * n_b].to_vec()))
        .collect();
    FigureData {
        title: format!(
            "LRU-model sensitivity to the actual policy on {}",
            spec.name
        ),
        x_label: "B as % of T".into(),
        y_label: "error %".into(),
        series,
    }
}

/// Multi-user contention study (§6 future work): `k` scans share one LRU
/// buffer (round-robin interleaved, distinct tables). For the victim scan,
/// compare two ways of using EPFIS under contention:
///
/// * **naive** — estimate with the full buffer `B` (what a
///   contention-unaware optimizer does),
/// * **fair-share** — estimate with `B/k` (the classic heuristic).
///
/// x = number of concurrent scans, y = the §5 error metric of the victim's
/// estimates against its measured share of the misses.
pub fn contention(
    spec: DatasetSpec,
    levels: &[usize],
    buffer: u64,
    scans_per_level: usize,
    seed: u64,
) -> FigureData {
    use epfis_lrusim::shared_lru_misses;
    let dataset = Dataset::generate(spec.clone());
    let summary = TraceSummary::from_trace(dataset.trace());
    let stats = LruFit::new(EpfisConfig::default()).collect_from_curve(
        &summary.fetch_curve,
        summary.table_pages,
        summary.records,
        summary.distinct_keys,
    );
    let mut generator = WorkloadGenerator::new(dataset.trace(), seed);
    let scans = generator.generate(&ScanWorkloadConfig {
        scans: scans_per_level.max(2),
        small_fraction: 0.5,
        seed,
    });

    let mut naive_points = Vec::with_capacity(levels.len());
    let mut fair_points = Vec::with_capacity(levels.len());
    for &k in levels {
        assert!(k >= 1, "need at least the victim scan");
        let mut naive_est = Vec::with_capacity(scans.len());
        let mut fair_est = Vec::with_capacity(scans.len());
        let mut actual = Vec::with_capacity(scans.len());
        for (i, victim) in scans.iter().enumerate() {
            let streams: Vec<&[u32]> = (0..k)
                .map(|j| {
                    let s = &scans[(i + j) % scans.len()];
                    dataset.trace().scan_slice(s.key_lo, s.key_hi)
                })
                .collect();
            let misses = shared_lru_misses(&streams, buffer as usize);
            actual.push(misses[0].max(1) as f64);
            naive_est.push(stats.estimate(&ScanQuery::range(victim.selectivity, buffer)));
            fair_est.push(stats.estimate(&ScanQuery::range(
                victim.selectivity,
                (buffer / k as u64).max(1),
            )));
        }
        naive_points.push((
            k as f64,
            crate::metrics::aggregate_error_percent(&naive_est, &actual),
        ));
        fair_points.push((
            k as f64,
            crate::metrics::aggregate_error_percent(&fair_est, &actual),
        ));
    }
    FigureData {
        title: format!(
            "multi-user contention on {} (shared B = {buffer})",
            spec.name
        ),
        x_label: "concurrent scans".into(),
        y_label: "error % (victim scan)".into(),
        series: vec![
            Series::dense("EPFIS naive (full B)", naive_points),
            Series::dense("EPFIS fair-share (B/k)", fair_points),
        ],
    }
}

/// Ablation: the calibrated baseline variants against the literal printed
/// formulas (DESIGN.md §2) — ML with/without the `F ≤ T` cap, DC with the
/// clamped vs printed log term and with the min/max vs run-order CC.
pub fn baseline_variant_ablation(spec: DatasetSpec, min_buffer: u64, seed: u64) -> FigureData {
    use epfis_estimators::{DcEstimator, MlEstimator, PageFetchEstimator, ScanParams};
    let dataset = Dataset::generate(spec.clone());
    let summary = TraceSummary::from_trace(dataset.trace());
    let mut generator = WorkloadGenerator::new(dataset.trace(), seed);
    let scans = generator.generate(&paper_workload(seed));
    let truths = crate::truth::workload_truth(&dataset, &scans);
    let buffers = paper_buffer_grid(summary.table_pages, min_buffer);
    let t = summary.table_pages as f64;

    type NamedEstimator = (&'static str, Box<dyn PageFetchEstimator>);
    let variants: Vec<NamedEstimator> = vec![
        ("ML (capped)", Box::new(MlEstimator::from_summary(&summary))),
        (
            "ML (printed)",
            Box::new(MlEstimator::from_summary(&summary).uncapped()),
        ),
        (
            "DC (clamped)",
            Box::new(DcEstimator::from_summary(&summary)),
        ),
        (
            "DC (printed)",
            Box::new(DcEstimator::from_summary_as_printed(&summary)),
        ),
        (
            "DC (run-order CC)",
            Box::new(DcEstimator::from_stats(
                summary.table_pages,
                summary.records,
                summary.distinct_keys,
                summary.cluster_counter_run_order,
            )),
        ),
    ];
    let series = variants
        .iter()
        .map(|(name, est)| {
            let points: Vec<(f64, f64)> = buffers
                .iter()
                .map(|&b| {
                    let estimates: Vec<f64> = scans
                        .iter()
                        .map(|s| {
                            est.estimate(
                                &ScanParams::range(s.selectivity, b)
                                    .with_distinct_keys(s.distinct_keys),
                            )
                        })
                        .collect();
                    let actuals: Vec<f64> = truths.iter().map(|c| c.fetches(b) as f64).collect();
                    (
                        100.0 * b as f64 / t,
                        crate::metrics::aggregate_error_percent(&estimates, &actuals),
                    )
                })
                .collect();
            Series::dense(*name, points)
        })
        .collect();
    FigureData {
        title: format!("baseline variant ablation on {}", spec.name),
        x_label: "B as % of T".into(),
        y_label: "error %".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_pushes_the_naive_estimate_toward_underestimation() {
        // Cache-friendly data (K=0.5) so shared frames actually matter.
        let spec = DatasetSpec::synthetic(20_000, 400, 20, 0.0, 0.5);
        let fig = contention(spec, &[1, 4], 200, 12, 7);
        assert_eq!(fig.series.len(), 2);
        let naive = &fig.series[0].points;
        let fair = &fig.series[1].points;
        // At k=1 both heuristics coincide.
        assert!((naive[0].1.unwrap() - fair[0].1.unwrap()).abs() < 1e-9);
        // Competitors steal frames, so the victim's actual misses grow while
        // the naive estimate stays fixed: its signed error must drop.
        let drop = naive[0].1.unwrap() - naive[1].1.unwrap();
        assert!(drop > 1.0, "expected a clear drop, got {drop}%");
    }

    #[test]
    fn sargable_accuracy_is_reasonable_in_large_buffer_regime() {
        // The urn model reduces referenced pages, so with B near T the
        // estimate should track the Bernoulli-filtered ground truth.
        let spec = DatasetSpec::synthetic(10_000, 200, 20, 0.0, 1.0);
        let t = 500u64; // 10_000 / 20
        let fig = sargable_accuracy(spec, &[t], &[0.05, 0.2, 0.5, 0.9], 7);
        assert_eq!(fig.series.len(), 1);
        for (s, err) in fig.series[0].points.iter().map(|&(x, y)| (x, y.unwrap())) {
            assert!(
                err.abs() < 30.0,
                "S={s}: urn model off by {err}% even at B=T"
            );
        }
    }

    #[test]
    fn staleness_error_grows_with_data_growth() {
        let spec = DatasetSpec::synthetic(10_000, 200, 20, 0.0, 0.5);
        let fig = staleness(spec, &[1.0, 1.5, 2.0], 30, 7);
        let ys: Vec<f64> = fig.series[0].points.iter().map(|p| p.1.unwrap()).collect();
        assert_eq!(ys.len(), 3);
        assert!(
            ys[2] > ys[0],
            "doubling the data should hurt stale stats: {ys:?}"
        );
    }

    #[test]
    fn baseline_variant_ablation_has_five_series() {
        let spec = DatasetSpec::synthetic(10_000, 200, 20, 0.0, 0.2);
        let fig = baseline_variant_ablation(spec, 30, 5);
        assert_eq!(fig.series.len(), 5);
    }

    #[test]
    fn fig1_has_five_normalized_curves() {
        let f = fig1(20, 7);
        assert_eq!(f.series.len(), 5);
        for s in &f.series {
            assert_eq!(s.points.len(), 100);
            // F/T starts high at tiny buffers and ends at >= 1.
            let first = s.points[0].1.unwrap();
            let last = s.points.last().unwrap().1.unwrap();
            assert!(first >= last, "{}: FPF must not increase", s.name);
            assert!(last >= 1.0 - 1e-9, "{}: full scan floor is T", s.name);
        }
    }

    #[test]
    fn figure_numbering_matches_paper() {
        assert_eq!(synthetic_figure_number(0.0, 0.0), Some(10));
        assert_eq!(synthetic_figure_number(0.0, 1.0), Some(15));
        assert_eq!(synthetic_figure_number(0.86, 0.0), Some(16));
        assert_eq!(synthetic_figure_number(0.86, 0.10), Some(18));
        assert_eq!(synthetic_figure_number(0.86, 1.0), Some(21));
        assert_eq!(synthetic_figure_number(0.5, 0.1), None);
        assert_eq!(synthetic_figure_number(0.0, 0.3), None);
    }

    #[test]
    fn synthetic_figure_runs_at_small_scale() {
        let p = SyntheticParams::paper(0.0, 0.5).scaled(50);
        let (fig, maxes) = synthetic_error_figure(p);
        assert_eq!(fig.series.len(), 5);
        assert_eq!(maxes.len(), 5);
        assert_eq!(maxes[0].0, "EPFIS");
        // EPFIS stays in family at reduced scale.
        assert!(maxes[0].1 < 60.0, "EPFIS max error {}", maxes[0].1);
    }

    #[test]
    fn gwl_error_figure_runs_at_small_scale() {
        let (fig, maxes) = gwl_error_figure(2, "CMAC.BRAN", 10, 30, 3);
        assert!(fig.title.contains("CMAC.BRAN"));
        assert_eq!(fig.series.len(), 5);
        assert_eq!(maxes.len(), 5);
    }

    #[test]
    fn tables_render_both_tables() {
        let out = tables(20, 5);
        assert!(out.contains("Table 2"));
        assert!(out.contains("Table 3"));
        assert!(out.contains("CMAC"));
        assert!(out.contains("PLON.CLID"));
    }

    #[test]
    fn config_ablation_produces_one_series_per_config() {
        let spec = DatasetSpec::synthetic(10_000, 200, 20, 0.0, 0.5);
        let fig = config_ablation(
            spec,
            &[
                ("paper", EpfisConfig::default()),
                ("no-corr", EpfisConfig::default().without_correction()),
            ],
            30,
            5,
        );
        assert_eq!(fig.series.len(), 2);
        assert_eq!(fig.series[0].name, "paper");
    }

    #[test]
    fn sd_exponent_ablation_differs_with_duplicates() {
        let spec = DatasetSpec::synthetic(10_000, 100, 20, 0.0, 1.0);
        let fig = sd_exponent_ablation(spec, 30, 5);
        assert_eq!(fig.series.len(), 2);
        let a = fig.series[0].max_abs_y();
        let b = fig.series[1].max_abs_y();
        assert_ne!(a, b, "the two exponent readings should diverge");
    }

    #[test]
    fn segment_sensitivity_improves_then_flattens() {
        let spec = DatasetSpec::synthetic(20_000, 400, 20, 0.0, 0.5);
        let fig = segment_sensitivity(spec, &[1, 2, 4, 6, 10], 40, 9);
        let ys: Vec<f64> = fig.series[0].points.iter().map(|p| p.1.unwrap()).collect();
        assert_eq!(ys.len(), 5);
        // One segment is worse than six (the paper's motivation).
        assert!(ys[0] >= ys[3] - 1e-9, "1 seg {} vs 6 seg {}", ys[0], ys[3]);
    }
}
