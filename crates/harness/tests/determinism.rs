//! Parallel-vs-serial determinism: for a fixed seed, every harness result
//! must be bit-identical at any thread count. This is what guarantees that
//! the CSV/table artifacts `repro_all` writes do not depend on `--threads`.

use epfis::EpfisConfig;
use epfis_datagen::{Dataset, DatasetSpec, ScanKind, ScanWorkloadConfig, WorkloadGenerator};
use epfis_harness::experiment::{paper_buffer_grid, DatasetExperiment};
use epfis_harness::truth::workload_truth_on;

/// Runs `f` under each thread budget in turn and asserts every run returns
/// the same value as the single-threaded one.
fn assert_thread_invariant<R, F>(label: &str, f: F) -> R
where
    R: PartialEq + std::fmt::Debug,
    F: Fn() -> R,
{
    epfis_par::set_threads(1);
    let serial = f();
    for t in [2usize, 4, 8] {
        epfis_par::set_threads(t);
        let parallel = f();
        assert_eq!(
            parallel, serial,
            "{label}: threads={t} diverged from serial"
        );
    }
    epfis_par::set_threads(0);
    serial
}

#[test]
fn workload_truth_identical_across_thread_counts() {
    let dataset = Dataset::generate(DatasetSpec::synthetic(8000, 160, 20, 0.0, 0.3));
    let mut w = WorkloadGenerator::new(dataset.trace(), 42);
    let scans: Vec<_> = (0..24)
        .map(|i| {
            w.draw(if i % 2 == 0 {
                ScanKind::Small
            } else {
                ScanKind::Large
            })
        })
        .collect();
    let truths = assert_thread_invariant("workload_truth_on", || {
        workload_truth_on(dataset.trace(), &scans)
    });
    assert_eq!(truths.len(), scans.len());
}

#[test]
fn error_series_identical_across_thread_counts() {
    let spec = DatasetSpec::synthetic(10_000, 200, 20, 0.0, 0.5);
    let workload = ScanWorkloadConfig {
        scans: 40,
        small_fraction: 0.5,
        seed: 7,
    };
    // Build serially once: construction itself uses the parallel truth
    // measurement, which the first test already pins down.
    epfis_par::set_threads(1);
    let exp = DatasetExperiment::build(Dataset::generate(spec), &workload, EpfisConfig::default());
    let buffers = paper_buffer_grid(exp.summary().table_pages, 30);

    let series = assert_thread_invariant("error_series", || exp.error_series(&buffers, 100.0));
    assert_eq!(series.len(), 5);

    assert_thread_invariant("max_abs_error", || exp.max_abs_error(&buffers));
    assert_thread_invariant("estimates", || exp.estimates(0, buffers[0]));
}

#[test]
fn figure_drivers_identical_across_thread_counts() {
    use epfis_harness::figures;
    let fig = assert_thread_invariant("gwl_error_figure", || {
        figures::gwl_error_figure(2, "CMAC.BRAN", 20, 15, 3)
    });
    assert_eq!(fig.0.series.len(), 5);

    let spec = DatasetSpec::synthetic(6000, 120, 20, 0.0, 0.5);
    assert_thread_invariant("policy_sensitivity", || {
        figures::policy_sensitivity(spec.clone(), 20, 5).series
    });
    assert_thread_invariant("sargable_accuracy", || {
        figures::sargable_accuracy(spec.clone(), &[60, 150], &[0.1, 0.5, 0.9], 7).series
    });
    assert_thread_invariant("staleness", || {
        figures::staleness(spec.clone(), &[1.0, 1.5], 20, 7).series
    });
}
