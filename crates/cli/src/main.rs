//! The `epfis` binary: see [`epfis_cli`] for the command reference.
//!
//! Exit codes: `0` success, `2` usage / argument parse errors (including an
//! unknown subcommand), `1` runtime errors. Errors print to stderr.

fn main() {
    let cmd = match epfis_cli::Command::parse(std::env::args().skip(1)) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if !epfis_cli::is_known_command(&cmd.name) {
        eprintln!("unknown command {:?}\n{}", cmd.name, epfis_cli::USAGE);
        std::process::exit(2);
    }
    if let Err(e) = epfis_cli::validate_usage(&cmd) {
        eprintln!("{e}\n{}", epfis_cli::USAGE);
        std::process::exit(2);
    }
    match epfis_cli::run(&cmd) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
