//! The `epfis` binary: see [`epfis_cli`] for the command reference.

fn main() {
    let cmd = match epfis_cli::Command::parse(std::env::args().skip(1)) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match epfis_cli::run(&cmd) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
