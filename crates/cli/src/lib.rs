//! Implementation of the `epfis` command-line tool.
//!
//! The CLI mirrors the lifecycle a DBA would drive in a real system:
//!
//! ```text
//! epfis analyze  --catalog cat.txt --name t.k --records 100000 --distinct 1000 \
//!                --per-page 40 --k 0.2            # statistics collection (LRU-Fit)
//! epfis analyze  --catalog cat.txt --gwl CMAC.BRAN --scale 4
//! epfis show     --catalog cat.txt                 # list catalog entries
//! epfis fpf      --catalog cat.txt --name t.k      # print the stored curve
//! epfis estimate --catalog cat.txt --name t.k --sigma 0.1 --buffer 500 [--sargable 0.5]
//! epfis explain  --catalog cat.txt --name t.k --sigma 0.1 --buffer 500
//! epfis plan     --catalog cat.txt --name t.k --sigma 0.1 --buffer 500
//! ```
//!
//! `analyze` generates the named synthetic dataset (or GWL stand-in)
//! deterministically from its parameters, runs the statistics scan, and
//! stores the catalog entry; the other commands work purely from the
//! catalog file, exactly as an optimizer would. `epfis serve` exposes the
//! same catalog over TCP (see `epfis-server` and `docs/protocol.md`), and
//! `epfis client` scripts that service from the shell.
//!
//! Exit codes: `0` success, `2` usage / argument parse errors, `1` runtime
//! errors (missing files, unknown entries, server failures). Errors go to
//! stderr; stdout carries only command output.

use epfis::optimizer::{AccessPathSelector, IndexCandidate, QuerySpec};
use epfis::{Catalog, EpfisConfig, LruFit, ScanQuery};
use epfis_datagen::{gwl, Dataset, DatasetSpec};
use std::collections::HashMap;

/// A parsed command line: subcommand plus `--key value` options.
pub struct Command {
    /// The subcommand name.
    pub name: String,
    options: HashMap<String, String>,
}

/// CLI errors (all user-facing).
#[derive(Debug, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

impl Command {
    /// Parses `args` (without the binary name).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Command, CliError> {
        let mut args = args.into_iter();
        let name = args.next().ok_or_else(|| err(USAGE))?;
        let mut options = HashMap::new();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let key = arg.strip_prefix("--").ok_or_else(|| {
                err(format!(
                    "unexpected argument {arg:?} (flags are --key value)"
                ))
            })?;
            let value = args
                .next()
                .ok_or_else(|| err(format!("flag --{key} needs a value")))?;
            options.insert(key.to_string(), value);
        }
        Ok(Command { name, options })
    }

    fn get<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, CliError>
    where
        T::Err: std::fmt::Display,
    {
        match self.options.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|e| err(format!("bad value for --{key}: {e}"))),
        }
    }

    fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, CliError>
    where
        T::Err: std::fmt::Display,
    {
        self.get(key)?
            .ok_or_else(|| err(format!("missing required flag --{key}")))
    }

    fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError>
    where
        T::Err: std::fmt::Display,
    {
        Ok(self.get(key)?.unwrap_or(default))
    }
}

/// Top-level usage text.
pub const USAGE: &str = "usage: epfis <analyze|show|fpf|estimate|plan> --catalog FILE [options]
  analyze   --catalog F --name NAME --records N --distinct I --per-page R \\
            [--theta T] [--k K] [--noise P] [--seed S] [--segments M]
            (or: --gwl TABLE.COLUMN [--scale D] instead of the synthetic knobs)
            (or: --trace FILE [--table-pages T], FILE has one `key page` pair
             per line in key order — a captured statistics-scan trace)
  show      --catalog F
  fpf       --catalog F --name NAME [--points P]
  estimate  --catalog F --name NAME --sigma S --buffer B [--sargable X]
  explain   --catalog F --name NAME --sigma S --buffer B [--sargable X]
            (the same estimate plus the full Est-IO decision trace: FPF
             segment, clamp, small-sigma correction, sargable reduction;
             with --addr HOST:PORT instead of --catalog the trace comes
             from a running server via EXPLAIN ESTIMATE)
  plan      --catalog F --name NAME --sigma S --buffer B [--sargable X]
  compare   --trace FILE [--table-pages T] [--points P]
            (full-scan fetches: exact LRU simulation vs EPFIS/ML/DC/SD/OT,
             computed from the trace alone — no catalog needed)
  bench     --trace FILE [--table-pages T] [--scans N] [--min-buffer B] [--seed S]
            (the paper's Section 5 experiment on a captured trace: random
             partial scans, aggregate error per algorithm per buffer size)
  serve     [--addr HOST:PORT] [--catalog F] [--workers N] [--segments M]
            [--frontend pool|evloop]
            [--max-line-bytes B] [--max-pending-bytes B] [--idle-timeout-ms T]
            [--max-connections N] [--max-session-refs R]
            [--metrics-addr HOST:PORT] [--log-level L] [--log-format human|json]
            [--log-file F] [--wal-dir D] [--wal-fsync always|batch|never]
            [--wal-segment-bytes B] [--wal-checkpoint-refs R]
            [--drift-threshold T] [--slow-request-us U]
            (long-running estimation service; prints `listening on ADDR`,
             stops on the SHUTDOWN protocol command; --frontend picks the
             serving core: `pool` (default) runs a worker thread per active
             connection, `evloop` serves every connection from one
             readiness-driven thread and scales to tens of thousands of
             idle connections — see docs/serving.md; the limit flags bound
             what one client can cost the server — see docs/protocol.md,
             \"Limits & backpressure\". --metrics-addr adds an HTTP endpoint
             serving /metrics, /healthz, and /events and prints `metrics on
             ADDR`; --log-level trace|debug|info|warn|error|off enables
             structured events on stderr, --log-file appends them as JSON
             lines — see docs/observability.md. --wal-dir write-ahead-logs
             every ANALYZE session so a crash or disconnect never loses
             in-flight references: on restart the server replays the log
             and a client reattaches with ANALYZE RESUME — see
             docs/durability.md. If storage fails at runtime the server
             degrades to read-only — estimates keep serving, ingest answers
             ERR readonly — until the RECOVER command re-probes the disk;
             the EPFIS_FAULTS env var injects scripted storage faults for
             chaos testing. The OBSERVE command feeds actual page-fetch
             counts back to the server; --drift-threshold sets the |bias
             EWMA| above which an entry is flagged stale (default 0.25),
             and --slow-request-us sets the latency above which a request
             is captured in the in-memory slow log served by the SLOWLOG
             command and the /slowlog route (default 100000) — see
             docs/observability.md, \"Accuracy & drift\")
  drift     --addr HOST:PORT [--name NAME]
            (observed-vs-predicted estimator accuracy from a running
             server: sends DRIFT and prints one line per catalog entry —
             epoch, observation count, median/mean signed relative error,
             bias EWMA, stale flag, and the error histogram; --name limits
             the report to one entry)
  client    --addr HOST:PORT [--send CMD] [--binary true]
            [--retries N] [--timeout-ms T]
            (one-shot with --send, otherwise reads protocol commands from
             stdin; --binary true upgrades the connection to binary framing
             v2 with HELLO BINARY and carries each command in a TEXT frame —
             answers are identical; see docs/protocol.md. --retries/
             --timeout-ms switch to the self-healing client: socket
             timeouts, reconnect with backoff, and automatic ANALYZE RESUME
             reattachment after a server restart — see docs/durability.md)
exit codes: 0 ok, 2 usage/parse error, 1 runtime error";

/// Parses a captured statistics-scan trace: one `key page` pair per line
/// (`#` comments and blank lines ignored), keys grouped contiguously in key
/// order. `table_pages` defaults to `max(page) + 1`.
pub fn parse_trace_file(
    text: &str,
    table_pages: Option<u32>,
) -> Result<epfis_lrusim::KeyedTrace, CliError> {
    let mut pages: Vec<u32> = Vec::new();
    let mut run_lengths: Vec<u32> = Vec::new();
    let mut current_key: Option<i64> = None;
    let mut seen: std::collections::HashSet<i64> = std::collections::HashSet::new();
    for (no, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (key, page) = match (parts.next(), parts.next(), parts.next()) {
            (Some(k), Some(p), None) => (k, p),
            _ => {
                return Err(err(format!(
                    "trace line {}: expected `key page`, got {line:?}",
                    no + 1
                )))
            }
        };
        let key: i64 = key
            .parse()
            .map_err(|e| err(format!("trace line {}: bad key: {e}", no + 1)))?;
        let page: u32 = page
            .parse()
            .map_err(|e| err(format!("trace line {}: bad page: {e}", no + 1)))?;
        if current_key == Some(key) {
            *run_lengths.last_mut().unwrap() += 1;
        } else {
            if !seen.insert(key) {
                return Err(err(format!(
                    "trace line {}: key {key} appears in two separate runs \
                     (the trace must be in key order)",
                    no + 1
                )));
            }
            current_key = Some(key);
            run_lengths.push(1);
        }
        pages.push(page);
    }
    if pages.is_empty() {
        return Err(err("trace file contains no references"));
    }
    let max_page = *pages.iter().max().unwrap();
    let t = table_pages.unwrap_or(max_page + 1);
    if t <= max_page {
        return Err(err(format!(
            "--table-pages {t} is smaller than the largest referenced page {max_page}"
        )));
    }
    Ok(epfis_lrusim::KeyedTrace::from_run_lengths(
        pages,
        &run_lengths,
        t,
    ))
}

/// Whether `name` is a subcommand the CLI knows. An unknown subcommand is a
/// usage error (exit 2), not a runtime failure.
pub fn is_known_command(name: &str) -> bool {
    matches!(
        name,
        "analyze"
            | "show"
            | "fpf"
            | "estimate"
            | "explain"
            | "plan"
            | "compare"
            | "bench"
            | "serve"
            | "client"
            | "drift"
            | "help"
            | "--help"
            | "-h"
    )
}

/// Validates flags that the contract treats as usage errors (exit 2 with
/// the usage text) rather than runtime failures — checks that need no work
/// to be done first. Today that is `serve`'s `--wal-*` family: a bad fsync
/// policy, a zero segment size or checkpoint interval, or a `--wal-dir`
/// that cannot be a directory must be rejected before the listener binds.
pub fn validate_usage(cmd: &Command) -> Result<(), CliError> {
    if cmd.name == "serve" {
        serve_wal_config(cmd)?;
    }
    Ok(())
}

/// Resolves the `--wal-*` flags into a [`epfis_server::WalConfig`], or
/// `None` when `--wal-dir` is absent (dependent flags then reject).
fn serve_wal_config(cmd: &Command) -> Result<Option<epfis_server::WalConfig>, CliError> {
    let dir = cmd.get::<String>("wal-dir")?;
    let fsync = cmd.get::<String>("wal-fsync")?;
    let segment_bytes = cmd.get::<u64>("wal-segment-bytes")?;
    let checkpoint_refs = cmd.get::<u64>("wal-checkpoint-refs")?;
    let Some(dir) = dir else {
        if fsync.is_some() || segment_bytes.is_some() || checkpoint_refs.is_some() {
            return Err(err(
                "--wal-fsync, --wal-segment-bytes, and --wal-checkpoint-refs require --wal-dir",
            ));
        }
        return Ok(None);
    };
    let mut config = epfis_server::WalConfig::new(&dir);
    if let Some(raw) = fsync {
        config.fsync = raw
            .parse::<epfis_server::FsyncPolicy>()
            .map_err(|e| err(format!("bad value for --wal-fsync: {e}")))?;
    }
    if let Some(b) = segment_bytes {
        config.segment_bytes = b;
    }
    if let Some(r) = checkpoint_refs {
        config.checkpoint_refs = r;
    }
    config.validate().map_err(err)?;
    // The directory is created on demand, but a path that already exists
    // as a non-directory can never hold segments.
    let p = std::path::Path::new(&dir);
    if p.exists() && !p.is_dir() {
        return Err(err(format!("--wal-dir {dir}: not a directory")));
    }
    Ok(Some(config))
}

/// Executes a parsed command, returning the text to print.
pub fn run(cmd: &Command) -> Result<String, CliError> {
    match cmd.name.as_str() {
        "analyze" => analyze(cmd),
        "show" => show(cmd),
        "fpf" => fpf(cmd),
        "estimate" => estimate(cmd),
        "explain" => explain(cmd),
        "plan" => plan(cmd),
        "compare" => compare(cmd),
        "bench" => bench(cmd),
        "serve" => serve(cmd),
        "client" => client(cmd),
        "drift" => drift(cmd),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(err(format!("unknown command {other:?}\n{USAGE}"))),
    }
}

/// Loads the catalog file. Commands that only read statistics require the
/// file to exist — a typo'd path must fail loudly, not estimate from an
/// empty catalog. Only `analyze` may create the file.
fn load_catalog(cmd: &Command, must_exist: bool) -> Result<(Catalog, String), CliError> {
    let path: String = cmd.require("catalog")?;
    let catalog = if std::path::Path::new(&path).exists() {
        Catalog::load(&path).map_err(|e| err(format!("cannot read catalog {path}: {e}")))?
    } else if must_exist {
        return Err(err(format!(
            "catalog file {path} does not exist (create it with `epfis analyze`)"
        )));
    } else {
        Catalog::new()
    };
    Ok((catalog, path))
}

fn entry<'c>(
    catalog: &'c Catalog,
    cmd: &Command,
) -> Result<(String, &'c epfis::IndexStatistics), CliError> {
    let name: String = cmd.require("name")?;
    let stats = catalog.get(&name).ok_or_else(|| {
        err(format!(
            "no catalog entry named {name:?} (try `epfis show`)"
        ))
    })?;
    Ok((name, stats))
}

fn analyze(cmd: &Command) -> Result<String, CliError> {
    let (mut catalog, path) = load_catalog(cmd, false)?;
    let seed: u64 = cmd.get_or("seed", 0x5EED_EF15)?;
    if let Some(trace_path) = cmd.get::<String>("trace")? {
        // Captured-trace mode: run LRU-Fit directly on the file.
        let name: String = cmd.require("name")?;
        let text = std::fs::read_to_string(&trace_path)
            .map_err(|e| err(format!("cannot read trace {trace_path}: {e}")))?;
        let trace = parse_trace_file(&text, cmd.get("table-pages")?)?;
        let config = EpfisConfig::default().with_segments(cmd.get_or("segments", 6usize)?);
        let stats = LruFit::new(config).collect(&trace);
        let summary = format!(
            "analyzed {name} from {trace_path}: T={} N={} I={} C={:.3}",
            stats.table_pages, stats.records, stats.distinct_keys, stats.clustering_factor
        );
        catalog
            .insert(name, stats)
            .map_err(|e| err(e.to_string()))?;
        catalog
            .save(&path)
            .map_err(|e| err(format!("cannot write catalog {path}: {e}")))?;
        return Ok(format!("{summary}\nsaved to {path}"));
    }
    let (name, dataset) = if let Some(column) = cmd.get::<String>("gwl")? {
        let scale: u32 = cmd.get_or("scale", 1)?;
        let col = gwl::gwl_column(&column)
            .ok_or_else(|| err(format!("unknown GWL column {column:?}")))?
            .scaled_down(scale);
        let (dataset, measured_c) = gwl::synthesize_gwl_column(&col, seed);
        let name: String = cmd.get_or("name", column.clone())?;
        let _ = measured_c;
        (name, dataset)
    } else {
        let name: String = cmd.require("name")?;
        let spec = DatasetSpec {
            name: name.clone(),
            records: cmd.require("records")?,
            distinct: cmd.require("distinct")?,
            records_per_page: cmd.require("per-page")?,
            theta: cmd.get_or("theta", 0.0)?,
            window_fraction: cmd.get_or("k", 0.2)?,
            noise: cmd.get_or("noise", 0.05)?,
            shuffle_frequencies: true,
            sorted_rids: false,
            seed,
        };
        (name, Dataset::generate(spec))
    };
    let config = EpfisConfig::default().with_segments(cmd.get_or("segments", 6usize)?);
    let stats = LruFit::new(config).collect(dataset.trace());
    let summary = format!(
        "analyzed {name}: T={} N={} I={} C={:.3}, {} segments over B in [{}, {}]",
        stats.table_pages,
        stats.records,
        stats.distinct_keys,
        stats.clustering_factor,
        stats.fpf.segments(),
        stats.b_min,
        stats.b_max
    );
    catalog
        .insert(name, stats)
        .map_err(|e| err(e.to_string()))?;
    catalog
        .save(&path)
        .map_err(|e| err(format!("cannot write catalog {path}: {e}")))?;
    Ok(format!("{summary}\nsaved to {path}"))
}

fn show(cmd: &Command) -> Result<String, CliError> {
    let (catalog, path) = load_catalog(cmd, true)?;
    if catalog.is_empty() {
        return Ok(format!("catalog {path}: empty"));
    }
    let mut out = format!(
        "catalog {path}: {} entries\n{:<24} {:>9} {:>10} {:>9} {:>7} {:>9}\n",
        catalog.len(),
        "index",
        "T",
        "N",
        "I",
        "C",
        "segments"
    );
    for (name, s) in catalog.iter() {
        out.push_str(&format!(
            "{:<24} {:>9} {:>10} {:>9} {:>7.3} {:>9}\n",
            name,
            s.table_pages,
            s.records,
            s.distinct_keys,
            s.clustering_factor,
            s.fpf.segments()
        ));
    }
    Ok(out)
}

fn fpf(cmd: &Command) -> Result<String, CliError> {
    let (catalog, _) = load_catalog(cmd, true)?;
    let (name, stats) = entry(&catalog, cmd)?;
    let points: usize = cmd.get_or("points", 12)?;
    let mut out = format!(
        "FPF curve for {name} (stored knots: {:?})\n{:>10} {:>12} {:>8}\n",
        stats
            .fpf
            .knots()
            .iter()
            .map(|&(b, f)| (b as u64, f as u64))
            .collect::<Vec<_>>(),
        "B",
        "F(B)",
        "F/T"
    );
    let t = stats.table_pages as f64;
    for i in 0..points {
        let b = stats.b_min
            + ((stats.b_max - stats.b_min) as f64 * i as f64 / (points - 1).max(1) as f64) as u64;
        let f = stats.full_scan_fetches(b);
        out.push_str(&format!("{:>10} {:>12.0} {:>8.2}\n", b, f, f / t));
    }
    Ok(out)
}

fn estimate(cmd: &Command) -> Result<String, CliError> {
    let (catalog, _) = load_catalog(cmd, true)?;
    let (name, stats) = entry(&catalog, cmd)?;
    let sigma: f64 = cmd.require("sigma")?;
    let buffer: u64 = cmd.require("buffer")?;
    let sargable: f64 = cmd.get_or("sargable", 1.0)?;
    if !(0.0..=1.0).contains(&sigma) || !(0.0..=1.0).contains(&sargable) {
        return Err(err("selectivities must be in [0, 1]"));
    }
    if buffer == 0 {
        return Err(err("--buffer must be at least 1"));
    }
    let q = ScanQuery::range(sigma, buffer).with_sargable(sargable);
    let f = stats.estimate(&q);
    Ok(format!(
        "{name}: sigma={sigma} S={sargable} B={buffer} -> estimated page fetches = {f:.1}\n\
         (table scan would fetch {}; full index scan at this buffer ~{:.0})",
        stats.table_pages,
        stats.full_scan_fetches(buffer)
    ))
}

/// Step headings for the wire trace records (`docs/protocol.md`, "EXPLAIN
/// ESTIMATE"). Unknown record keys render under their own name so a newer
/// server's extra records still show up instead of being dropped.
fn explain_heading(key: &str) -> &str {
    match key {
        "entry" => "catalog entry",
        "input" => "query",
        "stats" => "statistics",
        "fpf" => "step 4: FPF lookup",
        "scaled" => "step 5: sigma scaling",
        "correction" => "step 6: small-sigma correction",
        "sargable" => "step 7: sargable reduction",
        "value" => "final estimate",
        other => other,
    }
}

/// Renders `EXPLAIN ESTIMATE` wire lines (or a locally produced
/// [`epfis::explain::EstimateTrace::wire_lines`]) for humans: the estimate
/// first — byte-identical to what `estimate` prints — then one labelled
/// line per Est-IO decision record.
pub fn render_explain(lines: &[String]) -> Result<String, CliError> {
    let value = lines.first().ok_or_else(|| err("empty EXPLAIN response"))?;
    let mut out = format!("estimated page fetches = {value}\n");
    for line in &lines[1..] {
        let (key, rest) = line.split_once(' ').unwrap_or((line.as_str(), ""));
        out.push_str(&format!("  {:<30} {}\n", explain_heading(key), rest));
    }
    out.pop();
    Ok(out)
}

fn explain(cmd: &Command) -> Result<String, CliError> {
    if let Some(addr) = cmd.get::<String>("addr")? {
        // Remote mode: ask a running server, which also names the catalog
        // epoch the estimate came from.
        let name: String = cmd.require("name")?;
        let sigma: f64 = cmd.require("sigma")?;
        let buffer: u64 = cmd.require("buffer")?;
        let mut request = format!("EXPLAIN ESTIMATE {name} {sigma} {buffer}");
        if let Some(sargable) = cmd.get::<f64>("sargable")? {
            request.push_str(&format!(" {sargable}"));
        }
        let mut client = epfis_server::Client::connect(&addr)
            .map_err(|e| err(format!("cannot connect to {addr}: {e}")))?;
        let lines = client.request(&request).map_err(|e| err(e.to_string()))?;
        return render_explain(&lines);
    }
    // Local mode: same validation and arithmetic as `estimate`, plus the
    // decision trace (the traced value is bit-identical by construction).
    let (catalog, _) = load_catalog(cmd, true)?;
    let (_, stats) = entry(&catalog, cmd)?;
    let sigma: f64 = cmd.require("sigma")?;
    let buffer: u64 = cmd.require("buffer")?;
    let sargable: f64 = cmd.get_or("sargable", 1.0)?;
    if !(0.0..=1.0).contains(&sigma) || !(0.0..=1.0).contains(&sargable) {
        return Err(err("selectivities must be in [0, 1]"));
    }
    if buffer == 0 {
        return Err(err("--buffer must be at least 1"));
    }
    let q = ScanQuery::range(sigma, buffer).with_sargable(sargable);
    render_explain(&stats.estimate_traced(&q).wire_lines())
}

fn plan(cmd: &Command) -> Result<String, CliError> {
    let (catalog, _) = load_catalog(cmd, true)?;
    let (name, stats) = entry(&catalog, cmd)?;
    let sigma: f64 = cmd.require("sigma")?;
    let buffer: u64 = cmd.require("buffer")?;
    let sargable: f64 = cmd.get_or("sargable", 1.0)?;
    let selector = AccessPathSelector {
        table_pages: stats.table_pages,
        records: stats.records,
        buffer_pages: buffer,
    };
    let query = QuerySpec {
        output_selectivity: sigma * sargable,
        required_order: None,
        candidates: vec![IndexCandidate {
            name: name.clone(),
            stats: stats.clone(),
            range_selectivity: Some(sigma),
            sargable_selectivity: sargable,
        }],
        consider_rid_plans: true,
    };
    let mut out = format!("plans for sigma={sigma} S={sargable} B={buffer} (cheapest first):\n");
    for p in selector.enumerate(&query) {
        out.push_str(&format!("{:>12.1}  {}\n", p.io_cost, p.plan));
    }
    Ok(out)
}

fn compare(cmd: &Command) -> Result<String, CliError> {
    use epfis_estimators::{
        DcEstimator, MlEstimator, OtEstimator, PageFetchEstimator, ScanParams, SdEstimator,
        TraceSummary,
    };
    let trace_path: String = cmd.require("trace")?;
    let text = std::fs::read_to_string(&trace_path)
        .map_err(|e| err(format!("cannot read trace {trace_path}: {e}")))?;
    let trace = parse_trace_file(&text, cmd.get("table-pages")?)?;
    let points: usize = cmd.get_or("points", 10)?;

    let summary = TraceSummary::from_trace(&trace);
    let stats = LruFit::new(EpfisConfig::default()).collect_from_curve(
        &summary.fetch_curve,
        summary.table_pages,
        summary.records,
        summary.distinct_keys,
    );
    let estimators: Vec<Box<dyn PageFetchEstimator>> = vec![
        Box::new(MlEstimator::from_summary(&summary)),
        Box::new(DcEstimator::from_summary(&summary)),
        Box::new(SdEstimator::from_summary(&summary)),
        Box::new(OtEstimator::from_summary(&summary)),
    ];
    let mut out =
        format!(
        "full-scan page fetches from {trace_path} (T={} N={} I={} C={:.3})\n{:>10} {:>10} {:>10}",
        summary.table_pages, summary.records, summary.distinct_keys, stats.clustering_factor,
        "B", "exact", "EPFIS"
    );
    for e in &estimators {
        out.push_str(&format!(" {:>10}", e.name()));
    }
    out.push('\n');
    let (b_min, b_max) = (stats.b_min, stats.b_max);
    for i in 0..points {
        let b = b_min + ((b_max - b_min) as f64 * i as f64 / (points - 1).max(1) as f64) as u64;
        let exact = summary.fetch_curve.fetches(b);
        out.push_str(&format!(
            "{:>10} {:>10} {:>10.0}",
            b,
            exact,
            stats.estimate(&ScanQuery::full(b))
        ));
        let params = ScanParams::range(1.0, b).with_distinct_keys(summary.distinct_keys);
        for e in &estimators {
            out.push_str(&format!(" {:>10.0}", e.estimate(&params)));
        }
        out.push('\n');
    }
    Ok(out)
}

fn bench(cmd: &Command) -> Result<String, CliError> {
    use epfis_datagen::ScanWorkloadConfig;
    use epfis_harness::experiment::{paper_buffer_grid, DatasetExperiment};
    let trace_path: String = cmd.require("trace")?;
    let text = std::fs::read_to_string(&trace_path)
        .map_err(|e| err(format!("cannot read trace {trace_path}: {e}")))?;
    let trace = parse_trace_file(&text, cmd.get("table-pages")?)?;
    let scans: usize = cmd.get_or("scans", 200)?;
    let seed: u64 = cmd.get_or("seed", 0x5EED_EF15)?;
    let table_pages = trace.table_pages() as u64;
    let min_buffer: u64 = cmd.get_or("min-buffer", (table_pages / 20).max(12))?;

    let workload = ScanWorkloadConfig {
        scans,
        small_fraction: 0.5,
        seed,
    };
    let exp = DatasetExperiment::build_from_trace(trace, &workload, EpfisConfig::default());
    let buffers = paper_buffer_grid(table_pages, min_buffer);
    let names = exp.algorithm_names();
    let mut out = format!(
        "Section 5 experiment on {trace_path}: {scans} scans, {} buffer sizes
{:>10}",
        buffers.len(),
        "B(%T)"
    );
    for n in &names {
        out.push_str(&format!(" {n:>9}"));
    }
    out.push_str("   (aggregate error %)\n");
    for &b in &buffers {
        out.push_str(&format!("{:>9.1}%", 100.0 * b as f64 / table_pages as f64));
        for idx in 0..names.len() {
            out.push_str(&format!(" {:>9.1}", exp.error_percent(idx, b)));
        }
        out.push('\n');
    }
    out.push_str(
        "worst |error| per algorithm:
",
    );
    for (name, worst) in exp.max_abs_error(&buffers) {
        out.push_str(&format!(
            "  {name:>6}: {worst:8.1}%
"
        ));
    }
    Ok(out)
}

fn serve(cmd: &Command) -> Result<String, CliError> {
    use std::io::Write as _;
    let addr: String = cmd.get_or("addr", "127.0.0.1:0".to_string())?;
    let workers: usize = cmd.get_or("workers", 0)?;
    let frontend = match cmd.get::<String>("frontend")? {
        Some(raw) => epfis_server::Frontend::parse(&raw).map_err(err)?,
        None => epfis_server::Frontend::default(),
    };
    let segments: usize = cmd.get_or("segments", 6)?;
    if !(1..=64).contains(&segments) {
        return Err(err("--segments must be in [1, 64]"));
    }
    let defaults = epfis_server::LimitsConfig::default();
    let limits = epfis_server::LimitsConfig {
        max_line_bytes: cmd.get_or("max-line-bytes", defaults.max_line_bytes)?,
        max_pending_bytes: cmd.get_or("max-pending-bytes", defaults.max_pending_bytes)?,
        idle_timeout: std::time::Duration::from_millis(
            cmd.get_or("idle-timeout-ms", defaults.idle_timeout.as_millis() as u64)?,
        ),
        max_connections: cmd.get_or("max-connections", defaults.max_connections)?,
        max_session_refs: cmd.get_or("max-session-refs", defaults.max_session_refs)?,
    };
    limits.validate().map_err(|e| err(format!("limits: {e}")))?;
    // Chaos hook: EPFIS_FAULTS="op=sync_data kind=eio after=10" injects
    // scripted storage faults into the catalog-persist and WAL paths of a
    // stock binary, so degraded-mode behavior is testable end to end
    // without a special build. Unset (the normal case) costs nothing.
    let vfs = match std::env::var("EPFIS_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => {
            let fault_vfs = epfis_faults::FaultVfs::from_spec(&spec)
                .map_err(|e| err(format!("bad EPFIS_FAULTS spec: {e}")))?;
            eprintln!("warning: EPFIS_FAULTS is set; injecting storage faults: {spec}");
            Some(fault_vfs.shared())
        }
        _ => None,
    };
    let mut accuracy = epfis_server::AccuracyConfig::default();
    if let Some(t) = cmd.get::<f64>("drift-threshold")? {
        if !t.is_finite() || t <= 0.0 {
            return Err(err("--drift-threshold must be a positive number"));
        }
        accuracy.drift_threshold = t;
    }
    let config = epfis_server::ServerConfig {
        addr,
        workers,
        frontend,
        catalog_path: cmd.get::<String>("catalog")?.map(Into::into),
        epfis_config: EpfisConfig::default().with_segments(segments),
        limits,
        metrics_addr: cmd.get::<String>("metrics-addr")?,
        logger: serve_logger(cmd)?,
        wal: serve_wal_config(cmd)?,
        vfs,
        accuracy,
        slow_request_us: cmd.get_or(
            "slow-request-us",
            epfis_server::ServerConfig::default().slow_request_us,
        )?,
    };
    let server = epfis_server::serve(config).map_err(|e| err(format!("cannot serve: {e}")))?;
    // Announce the bound addresses immediately (port 0 resolves here) so
    // scripts can connect and scrape; the command then blocks until
    // SHUTDOWN.
    println!("listening on {}", server.addr());
    if let Some(metrics) = server.metrics_addr() {
        println!("metrics on {metrics}");
    }
    std::io::stdout().flush().ok();
    server.join();
    Ok("server stopped".to_string())
}

/// Builds the structured-event logger for `epfis serve` from `--log-level`
/// (default `info` once any logging flag appears), `--log-format` (stderr
/// encoding), and `--log-file` (JSON lines, appended). Returns `None` — the
/// zero-cost disabled logger — when no logging flag is given.
fn serve_logger(cmd: &Command) -> Result<Option<std::sync::Arc<epfis_obs::Logger>>, CliError> {
    let level_flag = cmd.get::<String>("log-level")?;
    let format_flag = cmd.get::<String>("log-format")?;
    let file_flag = cmd.get::<String>("log-file")?;
    if level_flag.is_none() && format_flag.is_none() && file_flag.is_none() {
        return Ok(None);
    }
    let level = match &level_flag {
        Some(raw) => epfis_obs::Level::parse_filter(raw).map_err(err)?,
        None => Some(epfis_obs::Level::Info),
    };
    let format = match &format_flag {
        Some(raw) => epfis_obs::LogFormat::parse(raw).map_err(err)?,
        None => epfis_obs::LogFormat::Human,
    };
    let mut logger =
        epfis_obs::Logger::new(level).with_sink(Box::new(epfis_obs::StderrSink::new(format)));
    if let Some(path) = &file_flag {
        let sink = epfis_obs::FileSink::append(path)
            .map_err(|e| err(format!("cannot open log file {path}: {e}")))?;
        logger = logger.with_sink(Box::new(sink));
    }
    Ok(Some(std::sync::Arc::new(logger)))
}

/// `epfis drift`: queries a running server's accuracy tracker. Prints the
/// server's `DRIFT` lines verbatim — they are already `key=value` readable
/// and round-trip through [`epfis_server::parse_drift_line`], which is used
/// here to reject a server speaking an incompatible dialect.
fn drift(cmd: &Command) -> Result<String, CliError> {
    let addr: String = cmd.require("addr")?;
    let mut client = epfis_server::Client::connect(&addr)
        .map_err(|e| err(format!("cannot connect to {addr}: {e}")))?;
    let request = match cmd.get::<String>("name")? {
        Some(name) => format!("DRIFT {name}"),
        None => "DRIFT".to_string(),
    };
    let lines = client.request(&request).map_err(|e| err(e.to_string()))?;
    if lines.is_empty() {
        return Ok("no drift observations yet (feed the server with OBSERVE)".to_string());
    }
    let mut out = String::new();
    for line in &lines {
        epfis_server::parse_drift_line(line)
            .map_err(|e| err(format!("unparseable DRIFT line from server: {e}: {line:?}")))?;
        out.push_str(line);
        out.push('\n');
    }
    out.pop();
    Ok(out)
}

fn client(cmd: &Command) -> Result<String, CliError> {
    let addr: String = cmd.require("addr")?;
    let binary = cmd.get_or("binary", false)?;
    let retries = cmd.get::<u32>("retries")?;
    let timeout_ms = cmd.get::<u64>("timeout-ms")?;
    // Either wire format serves the same commands: text sends raw lines,
    // binary wraps each line in a framing-v2 TEXT frame after the
    // HELLO BINARY upgrade. Responses are identical line-for-line.
    // --retries/--timeout-ms switch to the self-healing client, which
    // reconnects with backoff and reattaches ANALYZE sessions via
    // ANALYZE RESUME (requires the server to run with --wal-dir).
    enum Wire {
        Text(epfis_server::Client),
        Binary(epfis_server::BinaryClient),
        Resilient(epfis_server::ResilientClient),
    }
    let mut client = if retries.is_some() || timeout_ms.is_some() {
        let mut policy = epfis_server::RetryPolicy::default();
        if let Some(n) = retries {
            policy.retries = n;
        }
        if let Some(ms) = timeout_ms {
            policy.io_timeout = std::time::Duration::from_millis(ms);
            policy.connect_timeout = std::time::Duration::from_millis(ms.clamp(100, 10_000));
        }
        Wire::Resilient(
            epfis_server::ResilientClient::connect(&addr, policy, binary)
                .map_err(|e| err(format!("cannot connect to {addr}: {e}")))?,
        )
    } else if binary {
        Wire::Binary(
            epfis_server::BinaryClient::connect(&addr)
                .map_err(|e| err(format!("cannot connect to {addr}: {e}")))?,
        )
    } else {
        Wire::Text(
            epfis_server::Client::connect(&addr)
                .map_err(|e| err(format!("cannot connect to {addr}: {e}")))?,
        )
    };
    let mut send = |command: &str, out: &mut String| -> Result<(), CliError> {
        let lines = match &mut client {
            Wire::Text(c) => c.request(command),
            Wire::Binary(c) => c.text(command),
            Wire::Resilient(c) => c.request(command),
        }
        .map_err(|e| err(e.to_string()))?;
        for line in lines {
            out.push_str(&line);
            out.push('\n');
        }
        Ok(())
    };
    let mut out = String::new();
    if let Some(command) = cmd.get::<String>("send")? {
        send(&command, &mut out)?;
    } else {
        // Script mode: one protocol command per stdin line, so multi-command
        // ANALYZE sessions stay on this single connection.
        let stdin = std::io::stdin();
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::BufRead::read_line(&mut stdin.lock(), &mut line) {
                Ok(0) => break,
                Ok(_) => {
                    let command = line.trim();
                    if command.is_empty() || command.starts_with('#') {
                        continue;
                    }
                    send(command, &mut out)?;
                }
                Err(e) => return Err(err(format!("stdin: {e}"))),
            }
        }
    }
    // Trim the final newline; main prints one.
    out.pop();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(line: &str) -> Command {
        Command::parse(line.split_whitespace().map(|s| s.to_string())).unwrap()
    }

    fn temp_catalog(tag: &str) -> String {
        let dir = std::env::temp_dir().join("epfis-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}.cat"));
        std::fs::remove_file(&path).ok();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn parse_rejects_missing_subcommand_and_stray_args() {
        assert!(Command::parse(std::iter::empty()).is_err());
        assert!(Command::parse(["estimate".into(), "oops".into()]).is_err());
        assert!(Command::parse(["estimate".into(), "--sigma".into()]).is_err());
    }

    #[test]
    fn unknown_command_reports_usage() {
        let e = run(&cmd("frobnicate")).unwrap_err();
        assert!(e.0.contains("usage"));
    }

    #[test]
    fn analyze_show_estimate_round_trip() {
        let path = temp_catalog("roundtrip");
        let out = run(&cmd(&format!(
            "analyze --catalog {path} --name t.k --records 5000 --distinct 100 --per-page 20 --k 0.3"
        )))
        .unwrap();
        assert!(out.contains("analyzed t.k"), "{out}");
        assert!(out.contains("T=250"));

        let out = run(&cmd(&format!("show --catalog {path}"))).unwrap();
        assert!(out.contains("t.k"));
        assert!(out.contains("1 entries"));

        let out = run(&cmd(&format!(
            "estimate --catalog {path} --name t.k --sigma 0.2 --buffer 50"
        )))
        .unwrap();
        assert!(out.contains("estimated page fetches"));
    }

    #[test]
    fn analyze_is_deterministic_across_runs() {
        let p1 = temp_catalog("det1");
        let p2 = temp_catalog("det2");
        for p in [&p1, &p2] {
            run(&cmd(&format!(
                "analyze --catalog {p} --name ix --records 4000 --distinct 80 --per-page 20 --k 0.5 --seed 9"
            )))
            .unwrap();
        }
        assert_eq!(
            std::fs::read_to_string(&p1).unwrap(),
            std::fs::read_to_string(&p2).unwrap()
        );
    }

    #[test]
    fn fpf_prints_curve_rows() {
        let path = temp_catalog("fpf");
        run(&cmd(&format!(
            "analyze --catalog {path} --name ix --records 4000 --distinct 80 --per-page 20 --k 1.0"
        )))
        .unwrap();
        let out = run(&cmd(&format!("fpf --catalog {path} --name ix --points 5"))).unwrap();
        assert!(out.contains("FPF curve for ix"));
        assert_eq!(out.lines().count(), 2 + 5);
    }

    #[test]
    fn plan_lists_rid_sorted_alternative() {
        let path = temp_catalog("plan");
        run(&cmd(&format!(
            "analyze --catalog {path} --name ix --records 4000 --distinct 80 --per-page 20 --k 1.0"
        )))
        .unwrap();
        let out = run(&cmd(&format!(
            "plan --catalog {path} --name ix --sigma 0.4 --buffer 12"
        )))
        .unwrap();
        assert!(out.contains("table scan"));
        assert!(out.contains("partial scan on ix"));
        assert!(out.contains("rid-sorted scan on ix"));
    }

    #[test]
    fn estimate_validates_inputs() {
        let path = temp_catalog("validate");
        run(&cmd(&format!(
            "analyze --catalog {path} --name ix --records 2000 --distinct 50 --per-page 20 --k 0.2"
        )))
        .unwrap();
        assert!(run(&cmd(&format!(
            "estimate --catalog {path} --name ix --sigma 1.5 --buffer 10"
        )))
        .is_err());
        assert!(run(&cmd(&format!(
            "estimate --catalog {path} --name ix --sigma 0.5 --buffer 0"
        )))
        .is_err());
        assert!(run(&cmd(&format!(
            "estimate --catalog {path} --name nope --sigma 0.5 --buffer 10"
        )))
        .is_err());
    }

    #[test]
    fn gwl_analyze_uses_stand_in() {
        let path = temp_catalog("gwl");
        let out = run(&cmd(&format!(
            "analyze --catalog {path} --gwl INAP.UWID --scale 20"
        )))
        .unwrap();
        assert!(out.contains("analyzed INAP.UWID"), "{out}");
        let out = run(&cmd(&format!("show --catalog {path}"))).unwrap();
        assert!(out.contains("INAP.UWID"));
    }

    #[test]
    fn trace_file_parses_with_comments_and_runs() {
        let text = "# key page\n5 0\n5 1\n7 1\n\n9 3 # trailing comment\n";
        let t = parse_trace_file(text, None).unwrap();
        assert_eq!(t.num_entries(), 4);
        assert_eq!(t.num_keys(), 3);
        assert_eq!(t.table_pages(), 4);
        assert_eq!(t.run_pages(0), &[0, 1]);
        // Explicit table size wins.
        let t = parse_trace_file(text, Some(100)).unwrap();
        assert_eq!(t.table_pages(), 100);
    }

    #[test]
    fn trace_file_rejects_malformed_input() {
        assert!(parse_trace_file("", None).is_err());
        assert!(parse_trace_file("1 2 3\n", None).is_err());
        assert!(parse_trace_file("x 2\n", None).is_err());
        // Split runs (same key twice, not contiguous) are rejected.
        assert!(parse_trace_file("1 0\n2 1\n1 2\n", None).is_err());
        // Table size smaller than the largest page is rejected.
        assert!(parse_trace_file("1 10\n", Some(5)).is_err());
    }

    #[test]
    fn analyze_from_trace_file_round_trips() {
        let dir = std::env::temp_dir().join("epfis-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("captured.trace");
        // A clustered two-records-per-page trace over 50 pages.
        let mut text = String::new();
        for i in 0..100u32 {
            text.push_str(&format!("{} {}\n", i, i / 2));
        }
        std::fs::write(&trace_path, text).unwrap();
        let path = temp_catalog("trace-analyze");
        let out = run(&cmd(&format!(
            "analyze --catalog {path} --name captured --trace {}",
            trace_path.display()
        )))
        .unwrap();
        assert!(out.contains("T=50"), "{out}");
        assert!(out.contains("C=1.000"), "{out}");
        let out = run(&cmd(&format!(
            "estimate --catalog {path} --name captured --sigma 0.5 --buffer 10"
        )))
        .unwrap();
        assert!(out.contains("= 25"), "clustered: sigma*T = 25; {out}");
    }

    #[test]
    fn compare_reports_all_algorithms_from_a_trace_file() {
        let dir = std::env::temp_dir().join("epfis-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("compare.trace");
        let mut text = String::new();
        for i in 0..400u32 {
            // Interleaved pages: a genuinely unclustered index.
            text.push_str(&format!("{} {}\n", i, i.wrapping_mul(7919) % 40));
        }
        std::fs::write(&trace_path, text).unwrap();
        let out = run(&cmd(&format!(
            "compare --trace {} --points 4",
            trace_path.display()
        )))
        .unwrap();
        for name in ["exact", "EPFIS", "ML", "DC", "SD", "OT"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
        assert_eq!(out.lines().count(), 2 + 4);
    }

    #[test]
    fn bench_runs_the_section_5_experiment_on_a_trace() {
        let dir = std::env::temp_dir().join("epfis-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("bench.trace");
        let mut text = String::new();
        for i in 0..4000u32 {
            text.push_str(&format!("{} {}\n", i / 8, i.wrapping_mul(2654435761) % 50));
        }
        std::fs::write(&trace_path, text).unwrap();
        let out = run(&cmd(&format!(
            "bench --trace {} --scans 30 --min-buffer 5",
            trace_path.display()
        )))
        .unwrap();
        assert!(out.contains("worst |error| per algorithm"), "{out}");
        for name in ["EPFIS", "ML", "DC", "SD", "OT"] {
            assert!(out.contains(name));
        }
    }

    #[test]
    fn missing_required_flag_is_reported_by_name() {
        let path = temp_catalog("flags");
        run(&cmd(&format!(
            "analyze --catalog {path} --name ix --records 2000 --distinct 50 --per-page 20 --k 0.2"
        )))
        .unwrap();
        let e = run(&cmd(&format!("estimate --catalog {path}"))).unwrap_err();
        assert!(e.0.contains("--name"), "{e}");
    }

    #[test]
    fn explain_agrees_with_estimate_and_names_every_step() {
        let path = temp_catalog("explain");
        run(&cmd(&format!(
            "analyze --catalog {path} --name ix --records 4000 --distinct 80 --per-page 20 --k 0.3"
        )))
        .unwrap();
        let out = run(&cmd(&format!(
            "explain --catalog {path} --name ix --sigma 0.2 --buffer 40 --sargable 0.5"
        )))
        .unwrap();
        assert!(out.starts_with("estimated page fetches = "), "{out}");
        for heading in [
            "query",
            "statistics",
            "step 4: FPF lookup",
            "step 5: sigma scaling",
            "step 6: small-sigma correction",
            "step 7: sargable reduction",
            "final estimate",
        ] {
            assert!(out.contains(heading), "missing {heading:?} in:\n{out}");
        }
        // The first line carries the estimate byte-identical to `estimate`:
        // both print the same `{}`-formatted value.
        let (catalog, _) =
            load_catalog(&cmd(&format!("explain --catalog {path} --name ix")), true).unwrap();
        let stats = catalog.get("ix").unwrap();
        let q = ScanQuery::range(0.2, 40).with_sargable(0.5);
        assert!(
            out.lines()
                .next()
                .unwrap()
                .ends_with(&format!("= {}", stats.estimate(&q))),
            "{out}"
        );
        // Validation mirrors `estimate`'s.
        assert!(run(&cmd(&format!(
            "explain --catalog {path} --name ix --sigma 1.5 --buffer 40"
        )))
        .is_err());
        assert!(run(&cmd(&format!(
            "explain --catalog {path} --name ix --sigma 0.5 --buffer 0"
        )))
        .is_err());
    }

    #[test]
    fn render_explain_labels_records_and_keeps_unknown_keys() {
        let lines: Vec<String> = ["42.5", "value 42.5", "mystery a=1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let out = render_explain(&lines).unwrap();
        assert!(out.starts_with("estimated page fetches = 42.5\n"), "{out}");
        assert!(out.contains("final estimate"), "{out}");
        assert!(out.contains("mystery"), "{out}");
        assert!(render_explain(&[]).is_err());
    }

    #[test]
    fn read_commands_require_the_catalog_file_to_exist() {
        for sub in ["show", "fpf", "estimate", "explain", "plan"] {
            let e = run(&cmd(&format!(
                "{sub} --catalog /tmp/epfis-no-such-catalog --name x --sigma 0.1 --buffer 10"
            )))
            .unwrap_err();
            assert!(e.0.contains("does not exist"), "{sub}: {e}");
        }
    }

    #[test]
    fn known_commands_cover_the_dispatch_table() {
        for sub in [
            "analyze", "show", "fpf", "estimate", "explain", "plan", "compare", "bench", "serve",
            "client", "drift", "help",
        ] {
            assert!(is_known_command(sub), "{sub}");
        }
        assert!(!is_known_command("frobnicate"));
    }

    #[test]
    fn drift_requires_addr_and_serve_validates_observatory_flags() {
        let e = run(&cmd("drift")).unwrap_err();
        assert!(e.0.contains("--addr"), "{e}");
        // A bad threshold is rejected before the listener binds.
        let e = run(&cmd("serve --drift-threshold 0")).unwrap_err();
        assert!(e.0.contains("--drift-threshold"), "{e}");
        let e = run(&cmd("serve --drift-threshold nope")).unwrap_err();
        assert!(e.0.contains("--drift-threshold"), "{e}");
        let e = run(&cmd("serve --slow-request-us nope")).unwrap_err();
        assert!(e.0.contains("--slow-request-us"), "{e}");
    }

    #[test]
    fn drift_round_trips_against_a_live_server() {
        let server = epfis_server::serve(epfis_server::ServerConfig::default()).unwrap();
        let addr = server.addr().to_string();
        // Empty tracker: the DRIFT response has zero lines.
        let out = run(&cmd(&format!("drift --addr {addr}"))).unwrap();
        assert!(out.contains("no drift observations"), "{out}");
        // Asking for a never-observed entry is a server-side error.
        let e = run(&cmd(&format!("drift --addr {addr} --name nope"))).unwrap_err();
        assert!(e.0.contains("no observations"), "{e}");
        // Feed one observation through an analyzed entry, then the line
        // must print and parse.
        let mut c = epfis_server::Client::connect(&addr).unwrap();
        c.request("ANALYZE BEGIN ix").unwrap();
        for i in 0..100i64 {
            c.request(&format!("PAGE {} {}", i, i / 2)).unwrap();
        }
        c.request("ANALYZE COMMIT").unwrap();
        c.request("OBSERVE ix 20 10").unwrap();
        let out = run(&cmd(&format!("drift --addr {addr} --name ix"))).unwrap();
        assert!(out.starts_with("drift ix "), "{out}");
        assert!(out.contains("observations=1"), "{out}");
        c.request("SHUTDOWN").ok();
        server.join();
    }
}
