//! Exit-code and stream-discipline tests against the real `epfis` binary.
//!
//! The documented contract (see `USAGE` and `main.rs`): exit 0 on success,
//! exit 2 for usage/parse errors (unknown subcommand, malformed flags),
//! exit 1 for runtime errors (missing files, unknown entries) — and errors
//! always go to stderr, never stdout.

use std::process::{Command, Output, Stdio};

fn epfis(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_epfis"))
        .args(args)
        .stdin(Stdio::null())
        .output()
        .expect("run epfis binary")
}

fn assert_usage_error(out: &Output, ctx: &str) {
    assert_eq!(out.status.code(), Some(2), "{ctx}: {out:?}");
    assert!(out.stdout.is_empty(), "{ctx}: stdout must stay clean");
    assert!(!out.stderr.is_empty(), "{ctx}: error must go to stderr");
}

fn assert_runtime_error(out: &Output, ctx: &str) {
    assert_eq!(out.status.code(), Some(1), "{ctx}: {out:?}");
    assert!(out.stdout.is_empty(), "{ctx}: stdout must stay clean");
    assert!(!out.stderr.is_empty(), "{ctx}: error must go to stderr");
}

#[test]
fn unknown_subcommand_is_a_usage_error() {
    let out = epfis(&["frobnicate"]);
    assert_usage_error(&out, "unknown subcommand");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"), "{stderr}");
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn no_arguments_is_a_usage_error() {
    assert_usage_error(&epfis(&[]), "no arguments");
}

#[test]
fn malformed_flags_are_usage_errors() {
    // A flag with no value.
    assert_usage_error(&epfis(&["estimate", "--sigma"]), "flag without value");
    assert_usage_error(
        &epfis(&["explain", "--sigma"]),
        "explain flag without value",
    );
    // A positional argument where a flag is expected.
    assert_usage_error(&epfis(&["estimate", "oops"]), "stray positional");
    assert_usage_error(&epfis(&["explain", "oops"]), "explain stray positional");
}

#[test]
fn explain_runtime_errors_mirror_estimate() {
    // A typo'd catalog path must fail loudly, exactly like `estimate`.
    let out = epfis(&[
        "explain",
        "--catalog",
        "/tmp/epfis-definitely-missing.cat",
        "--name",
        "x",
        "--sigma",
        "0.1",
        "--buffer",
        "10",
    ]);
    assert_runtime_error(&out, "explain missing catalog");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("does not exist"),
        "{out:?}"
    );

    // A bad log level on serve is a runtime error before the bind, like
    // the limit flags.
    let out = epfis(&["serve", "--addr", "127.0.0.1:0", "--log-level", "chatty"]);
    assert_runtime_error(&out, "bad log level");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown log level"),
        "{out:?}"
    );

    // So is a bad serving front end.
    let out = epfis(&["serve", "--addr", "127.0.0.1:0", "--frontend", "fibers"]);
    assert_runtime_error(&out, "bad frontend");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("invalid frontend"),
        "{out:?}"
    );
}

#[test]
fn bad_wal_flags_are_usage_errors_before_the_bind() {
    // Unknown fsync policy.
    let out = epfis(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--wal-dir",
        "/tmp/epfis-wal-flags-test",
        "--wal-fsync",
        "eventually",
    ]);
    assert_usage_error(&out, "unknown fsync policy");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown fsync policy"), "{stderr}");
    assert!(stderr.contains("usage"), "{stderr}");

    // Zero segment size.
    let out = epfis(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--wal-dir",
        "/tmp/epfis-wal-flags-test",
        "--wal-segment-bytes",
        "0",
    ]);
    assert_usage_error(&out, "zero segment size");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("segment size"), "{stderr}");
    assert!(stderr.contains("usage"), "{stderr}");

    // A --wal-dir that already exists as a plain file.
    let file = std::env::temp_dir().join("epfis-wal-not-a-dir-test");
    std::fs::write(&file, b"occupied").unwrap();
    let out = epfis(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--wal-dir",
        file.to_str().unwrap(),
    ]);
    assert_usage_error(&out, "wal dir is a file");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not a directory"), "{stderr}");
    assert!(stderr.contains("usage"), "{stderr}");

    // WAL tuning flags without --wal-dir make no sense.
    let out = epfis(&["serve", "--addr", "127.0.0.1:0", "--wal-fsync", "batch"]);
    assert_usage_error(&out, "wal flags without --wal-dir");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("require --wal-dir"),
        "{out:?}"
    );
}

#[test]
fn missing_catalog_file_is_a_runtime_error() {
    let out = epfis(&[
        "estimate",
        "--catalog",
        "/tmp/epfis-definitely-missing.cat",
        "--name",
        "x",
        "--sigma",
        "0.1",
        "--buffer",
        "10",
    ]);
    assert_runtime_error(&out, "missing catalog");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("does not exist"),
        "{out:?}"
    );
}

#[test]
fn unknown_entry_is_a_runtime_error() {
    let dir = std::env::temp_dir().join("epfis-cli-errors-test");
    std::fs::create_dir_all(&dir).unwrap();
    let cat = dir.join("entries.cat");
    std::fs::remove_file(&cat).ok();
    let cat = cat.to_str().unwrap();
    let ok = epfis(&[
        "analyze",
        "--catalog",
        cat,
        "--name",
        "ix",
        "--records",
        "2000",
        "--distinct",
        "50",
        "--per-page",
        "20",
    ]);
    assert_eq!(ok.status.code(), Some(0), "{ok:?}");
    assert!(ok.stderr.is_empty(), "success must not write stderr");

    let out = epfis(&[
        "estimate",
        "--catalog",
        cat,
        "--name",
        "nope",
        "--sigma",
        "0.1",
        "--buffer",
        "10",
    ]);
    assert_runtime_error(&out, "unknown entry");
}

#[test]
fn help_prints_usage_to_stdout_and_exits_zero() {
    let out = epfis(&["help"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage"), "{stdout}");
    assert!(stdout.contains("exit codes"), "{stdout}");
    assert!(out.stderr.is_empty());
}

#[test]
fn serve_rejects_invalid_limits_before_binding() {
    // A line bound below the 64-byte floor.
    let out = epfis(&["serve", "--addr", "127.0.0.1:0", "--max-line-bytes", "10"]);
    assert_runtime_error(&out, "tiny max-line-bytes");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("limits"),
        "{out:?}"
    );

    // A pending bound smaller than the line bound is self-contradictory.
    let out = epfis(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--max-line-bytes",
        "65536",
        "--max-pending-bytes",
        "1024",
    ]);
    assert_runtime_error(&out, "pending below line bound");

    // Non-numeric limit values fail before the server binds, like any
    // per-command value parse (`bad value for --flag`).
    let out = epfis(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--max-connections",
        "many",
    ]);
    assert_runtime_error(&out, "non-numeric max-connections");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("bad value for --max-connections"),
        "{out:?}"
    );
}

#[test]
fn serve_and_client_round_trip_through_the_binary() {
    use std::io::{BufRead, BufReader, Write};

    // Start `epfis serve` on ephemeral ports and learn both from stdout —
    // the same handshake the CI smoke test scripts.
    let mut server = Command::new(env!("CARGO_BIN_EXE_epfis"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--metrics-addr",
            "127.0.0.1:0",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn epfis serve");
    // Keep the reader alive for the server's lifetime: dropping it closes
    // the pipe and the server's final status print would hit EPIPE.
    let mut server_stdout = BufReader::new(server.stdout.take().unwrap());
    let mut first_line = String::new();
    server_stdout.read_line(&mut first_line).unwrap();
    let addr = first_line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {first_line:?}"))
        .to_string();
    let mut metrics_line = String::new();
    server_stdout.read_line(&mut metrics_line).unwrap();
    let metrics_addr = metrics_line
        .trim()
        .strip_prefix("metrics on ")
        .unwrap_or_else(|| panic!("unexpected metrics banner {metrics_line:?}"))
        .to_string();

    // The observability endpoint answers its liveness probe.
    {
        use std::io::Read;
        let mut stream = std::net::TcpStream::connect(&metrics_addr).unwrap();
        write!(stream, "GET /healthz HTTP/1.1\r\nHost: epfis\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
        assert!(raw.contains("\"status\":\"ok\""), "{raw}");
    }

    // Script a full ANALYZE session plus queries through `epfis client`.
    let mut client = Command::new(env!("CARGO_BIN_EXE_epfis"))
        .args(["client", "--addr", &addr])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn epfis client");
    client
        .stdin
        .take()
        .unwrap()
        .write_all(
            b"# a tiny clustered index\n\
              ANALYZE BEGIN t.k table_pages=4\n\
              PAGE 1 0 1 0 2 1 3 2 4 3\n\
              ANALYZE COMMIT\n\
              ESTIMATE t.k 0.5 2\n\
              STATS\n",
        )
        .unwrap();
    let out = client.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("committed t.k epoch=1"), "{stdout}");
    assert!(stdout.contains("command ESTIMATE count=1"), "{stdout}");

    // `explain --addr` renders the server's EXPLAIN ESTIMATE trace.
    let explained = epfis(&[
        "explain", "--addr", &addr, "--name", "t.k", "--sigma", "0.5", "--buffer", "2",
    ]);
    assert_eq!(explained.status.code(), Some(0), "{explained:?}");
    let text = String::from_utf8_lossy(&explained.stdout);
    assert!(text.starts_with("estimated page fetches = "), "{text}");
    assert!(text.contains("catalog entry"), "{text}");
    assert!(text.contains("step 4: FPF lookup"), "{text}");

    // A protocol-level error surfaces as a client runtime error (exit 1).
    let bad = epfis(&["client", "--addr", &addr, "--send", "ESTIMATE nope 0.5 2"]);
    assert_runtime_error(&bad, "server ERR response");

    // SHUTDOWN stops the serve process cleanly (exit 0).
    let stop = epfis(&["client", "--addr", &addr, "--send", "SHUTDOWN"]);
    assert_eq!(stop.status.code(), Some(0), "{stop:?}");
    let status = server.wait().unwrap();
    assert!(status.success(), "{status:?}");
}
