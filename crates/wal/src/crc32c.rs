//! Software CRC32C (Castagnoli, reflected polynomial `0x82F63B78`).
//!
//! The WAL sits on the streaming-ingest hot path, where binary `PAGE`
//! frames arrive at hundreds of MB/s; a byte-at-a-time CRC would dominate
//! the append cost. This is the classic slicing-by-8 formulation: eight
//! 256-entry tables generated at compile time, consuming eight input bytes
//! per step with table lookups only — comfortably in the GB/s range on any
//! machine this workspace targets, with zero dependencies and no special
//! CPU instructions.
//!
//! CRC32C (rather than the zlib CRC32) matches what storage systems use
//! for on-disk integrity (iSCSI, ext4, Btrfs, LevelDB/RocksDB), so the
//! published test vectors from RFC 3720 apply directly.

/// Reflected Castagnoli polynomial.
const POLY: u32 = 0x82F6_3B78;

const fn tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            j += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

static TABLES: [[u32; 256]; 8] = tables();

/// CRC32C of `data` (init and final XOR both `!0`, per the standard).
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_update(0, data)
}

/// Continues a CRC32C over `data`, where `crc` is the digest of the bytes
/// seen so far (`0` to start). `crc32c_update(crc32c(a), b) == crc32c(a ++ b)`.
pub fn crc32c_update(crc: u32, data: &[u8]) -> u32 {
    let mut crc = !crc;
    let mut chunks = data.chunks_exact(8);
    for c in chunks.by_ref() {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-at-a-time reference implementation, for cross-checking the
    /// sliced tables.
    fn crc32c_bitwise(data: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in data {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
        }
        !crc
    }

    #[test]
    fn rfc3720_test_vectors() {
        // RFC 3720 §B.4 published CRC32C vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn sliced_matches_bitwise_on_all_lengths() {
        // Exercise every remainder length around the 8-byte chunking.
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(131) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(
                crc32c(&data[..len]),
                crc32c_bitwise(&data[..len]),
                "len={len}"
            );
        }
    }

    #[test]
    fn update_is_concatenation() {
        let a = b"write-ahead";
        let b = b" logging";
        let whole = [&a[..], &b[..]].concat();
        assert_eq!(crc32c_update(crc32c(a), b), crc32c(&whole));
        // Splitting at every point agrees too.
        for cut in 0..whole.len() {
            assert_eq!(
                crc32c_update(crc32c(&whole[..cut]), &whole[cut..]),
                crc32c(&whole)
            );
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"epfis wal record body";
        let base = crc32c(data);
        let mut tampered = data.to_vec();
        for byte in 0..tampered.len() {
            for bit in 0..8 {
                tampered[byte] ^= 1 << bit;
                assert_ne!(crc32c(&tampered), base, "flip at {byte}:{bit} undetected");
                tampered[byte] ^= 1 << bit;
            }
        }
    }
}
