//! Append-only write-ahead log with CRC32C-checksummed records.
//!
//! `epfis-wal` is a generic record log: callers append opaque byte bodies
//! and get them back, in order, on replay. It knows nothing about ANALYZE
//! sessions or catalogs — `epfis-server` layers its record schema on top.
//!
//! # On-disk format
//!
//! The log is a directory of segments `wal-NNNNNN.seg`, numbered from 0.
//! Each segment starts with a 12-byte header:
//!
//! ```text
//! magic "EPFISWAL" (8 bytes) | version u32 LE (= 1)
//! ```
//!
//! followed by records:
//!
//! ```text
//! len u32 LE | crc u32 LE | body (len bytes)
//! ```
//!
//! where `crc` is the CRC32C of `body`. A record is valid iff its length
//! prefix is in `1..=MAX_RECORD_BYTES`, the full body is present, and the
//! checksum matches. Appends rotate to a new segment once the current one
//! reaches `segment_bytes`, so no segment outlives its usefulness for
//! truncation-based garbage collection.
//!
//! # Torn-write protection
//!
//! A crash can leave a partial record at the log's tail: a short length
//! prefix, a half-written body, or (on storage without atomic sector
//! writes) a body whose middle never made it. Replay validates records in
//! order and treats the **first** invalid record as the end of the log:
//! the segment is truncated at that point, later segments (which could
//! only contain records appended after the torn one) are deleted, and
//! everything before it is returned. This mirrors the classic
//! ARIES-style tail scan; the checksum+length pair means a torn tail is
//! indistinguishable from a clean end-of-log, which is exactly the safe
//! interpretation.
//!
//! # Fsync policy
//!
//! [`FsyncPolicy`] trades durability for throughput:
//!
//! * `always` — `fdatasync` after every append; a record acknowledged is a
//!   record on stable storage.
//! * `batch` — appends go to the OS page cache; [`Wal::sync`] is called at
//!   session milestones (checkpoints, commits). A background flusher
//!   thread `fdatasync`s on a duplicate fd every couple of appended MiB,
//!   overlapping writeback with ingest so the milestone sync finds little
//!   left to wait for. A process crash loses nothing (the kernel still has
//!   the pages); a machine crash loses at most the appends since the last
//!   completed sync.
//! * `never` — no explicit syncs; durability rides entirely on the OS
//!   writeback. For benchmarks and tests.
//!
//! # Storage faults and poisoning
//!
//! Every file operation goes through an injectable [`Vfs`]
//! (`epfis-faults`); production uses the passthrough `StdVfs`, tests
//! script exact failures with `FaultVfs`. The first durability failure —
//! a failed append, fdatasync (foreground **or** on the background
//! flusher's duplicate fd), rotation, or reset — **poisons** the writer:
//! every subsequent [`Wal::append`]/[`Wal::sync`] fails fast with the
//! original cause instead of acknowledging writes that may never reach
//! stable storage. This closes the classic "fsyncgate" hazard, where the
//! kernel reports a writeback error exactly once and then clears the dirty
//! state, so a later fsync on the same (or a fresh) fd falsely succeeds.
//! Recovery is explicit: [`Wal::heal`] re-scans the directory, truncates
//! any torn tail the failed operation left behind, reopens the tail
//! segment, and probes it with a real fdatasync — only if all of that
//! succeeds does the writer accept appends again.

mod crc32c;

pub use crc32c::{crc32c, crc32c_update};
pub use epfis_faults::{StdVfs, Vfs, VfsFile};

use epfis_obs::wellknown;
use std::io;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::{Arc, Condvar, Mutex};

/// Segment file header: magic plus format version.
const MAGIC: &[u8; 8] = b"EPFISWAL";
const VERSION: u32 = 1;
/// Bytes of segment header before the first record.
pub const SEGMENT_HEADER_BYTES: u64 = 12;
/// Bytes of record framing (`len` + `crc`) before each body.
pub const RECORD_HEADER_BYTES: u64 = 8;
/// Upper bound on a single record body; a length prefix beyond this is
/// treated as corruption rather than an allocation request.
pub const MAX_RECORD_BYTES: u32 = 1 << 26;

/// When to push appended records to stable storage. See the crate docs
/// for the trade-offs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append.
    Always,
    /// Sync only at explicit [`Wal::sync`] milestones.
    Batch,
    /// Never sync explicitly.
    Never,
}

impl FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "batch" => Ok(FsyncPolicy::Batch),
            "never" => Ok(FsyncPolicy::Never),
            other => Err(format!(
                "unknown fsync policy {other:?} (expected always, batch, or never)"
            )),
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Batch => "batch",
            FsyncPolicy::Never => "never",
        })
    }
}

/// Configuration for opening a [`Wal`].
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Directory holding the segments; created if absent.
    pub dir: PathBuf,
    /// When appends reach stable storage.
    pub fsync: FsyncPolicy,
    /// Rotate to a new segment once the current one reaches this size.
    /// Must be non-zero; a record larger than this still lands whole in
    /// one segment (segments may exceed the limit by one record).
    pub segment_bytes: u64,
    /// The filesystem the log talks to; [`StdVfs`] in production, a
    /// `FaultVfs` under fault-injection tests.
    pub vfs: Arc<dyn Vfs>,
}

impl WalOptions {
    /// Sane defaults: 64 MiB segments, batch fsync, the real filesystem.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalOptions {
            dir: dir.into(),
            fsync: FsyncPolicy::Batch,
            segment_bytes: 64 << 20,
            vfs: StdVfs::shared(),
        }
    }
}

/// What replay found in an existing log directory.
#[derive(Debug)]
pub struct Replay {
    /// Every valid record body, oldest first, across all segments.
    pub records: Vec<Vec<u8>>,
    /// Bytes discarded from the torn tail (0 for a clean log). Counts the
    /// invalid bytes in the truncated segment plus entire later segments.
    pub truncated_bytes: u64,
    /// Segments present after truncation.
    pub segments: usize,
}

/// An open write-ahead log. Single-writer: callers serialize appends
/// (the server keeps the `Wal` behind a mutex).
pub struct Wal {
    dir: PathBuf,
    fsync: FsyncPolicy,
    segment_bytes: u64,
    vfs: Arc<dyn Vfs>,
    file: Box<dyn VfsFile>,
    seg_index: u64,
    seg_len: u64,
    /// Unsynced appends outstanding (only meaningful under `Batch`).
    dirty: bool,
    /// Reusable framing scratch so appends are one `write_all`.
    scratch: Vec<u8>,
    /// Background writeback thread (only under `Batch`): keeps the OS
    /// flushing appended pages while the caller keeps appending, so the
    /// milestone [`sync`](Wal::sync) finds little left to wait for.
    flusher: Option<Flusher>,
    /// First durability failure observed; set once, cleared only by
    /// [`heal`](Wal::heal). While set, appends and syncs fail fast.
    poisoned: Option<String>,
}

/// Dirty bytes accumulated before the background flusher is nudged. Small
/// enough that a milestone sync never waits on more than this much
/// unflushed data (plus whatever the in-flight flush covers), large enough
/// that the flusher is not woken per append.
const FLUSH_THRESHOLD_BYTES: u64 = 2 << 20;

struct FlushState {
    /// Clone of the current segment's handle; `fdatasync` on a duplicate
    /// fd flushes the same inode, so the flusher never touches `Wal.file`.
    file: Option<Box<dyn VfsFile>>,
    /// Bytes appended since the last flush was started.
    pending: u64,
    /// A background fdatasync failed with this error. The kernel may have
    /// already dropped the dirty pages and cleared the error, so a later
    /// sync on any fd can falsely succeed — the failure must surface
    /// through the writer, not be retried away.
    failed: Option<String>,
    shutdown: bool,
}

struct Flusher {
    shared: Arc<(Mutex<FlushState>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Flusher {
    fn spawn(file: Box<dyn VfsFile>) -> Flusher {
        let shared = Arc::new((
            Mutex::new(FlushState {
                file: Some(file),
                pending: 0,
                failed: None,
                shutdown: false,
            }),
            Condvar::new(),
        ));
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("epfis-wal-flush".to_string())
            .spawn(move || {
                let (lock, cv) = &*thread_shared;
                loop {
                    let mut st = lock.lock().unwrap_or_else(|e| e.into_inner());
                    while !st.shutdown && st.pending < FLUSH_THRESHOLD_BYTES {
                        st = cv.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                    if st.shutdown {
                        return;
                    }
                    st.pending = 0;
                    let file = st.file.as_ref().and_then(|f| f.try_clone().ok());
                    drop(st);
                    if let Some(f) = file {
                        match f.sync_data() {
                            Ok(()) => wellknown::wal().fsyncs.inc(),
                            Err(e) => {
                                // A background fsync failure is a durability
                                // failure: record it so the writer poisons
                                // itself at the next append/sync instead of
                                // acknowledging data the kernel may already
                                // have dropped (fsyncgate).
                                wellknown::wal().fsync_errors.inc();
                                let mut st = lock.lock().unwrap_or_else(|e| e.into_inner());
                                if st.failed.is_none() {
                                    st.failed = Some(format!("background fdatasync failed: {e}"));
                                }
                                // Stop touching the file; the writer decides
                                // what happens next.
                                st.file = None;
                            }
                        }
                    }
                }
            })
            .ok();
        Flusher { shared, handle }
    }

    /// Accounts `n` freshly appended bytes, waking the thread at the
    /// threshold.
    fn note_appended(&self, n: u64) {
        let (lock, cv) = &*self.shared;
        let mut st = lock.lock().unwrap_or_else(|e| e.into_inner());
        st.pending += n;
        if st.pending >= FLUSH_THRESHOLD_BYTES {
            cv.notify_one();
        }
    }

    /// Everything written so far just reached stable storage (milestone
    /// sync or rotation); point the thread at `file` (the new current
    /// segment) with nothing pending.
    fn set_file(&self, file: Option<Box<dyn VfsFile>>) {
        let (lock, _) = &*self.shared;
        let mut st = lock.lock().unwrap_or_else(|e| e.into_inner());
        st.file = file;
        st.pending = 0;
    }

    /// A milestone sync on the primary handle covered all appends.
    fn synced(&self) {
        let (lock, _) = &*self.shared;
        lock.lock().unwrap_or_else(|e| e.into_inner()).pending = 0;
    }

    /// The background failure, if one happened since the last
    /// [`clear_failure`](Flusher::clear_failure).
    fn failure(&self) -> Option<String> {
        let (lock, _) = &*self.shared;
        lock.lock()
            .unwrap_or_else(|e| e.into_inner())
            .failed
            .clone()
    }

    /// Forgets a recorded failure (only after [`Wal::heal`] re-probed the
    /// storage with a successful sync).
    fn clear_failure(&self) {
        let (lock, _) = &*self.shared;
        lock.lock().unwrap_or_else(|e| e.into_inner()).failed = None;
    }
}

impl Drop for Flusher {
    fn drop(&mut self) {
        let (lock, cv) = &*self.shared;
        {
            let mut st = lock.lock().unwrap_or_else(|e| e.into_inner());
            st.shutdown = true;
            st.file = None;
        }
        cv.notify_one();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:06}.seg"))
}

/// Parses `wal-NNNNNN.seg` back to its index.
fn segment_index(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Scans one segment's bytes, returning the parsed record bodies and the
/// validated prefix length. `valid < data.len()` means a torn tail.
fn scan_segment(data: &[u8]) -> (Vec<Vec<u8>>, u64) {
    let mut records = Vec::new();
    if data.len() < SEGMENT_HEADER_BYTES as usize
        || &data[..8] != MAGIC
        || u32::from_le_bytes([data[8], data[9], data[10], data[11]]) != VERSION
    {
        return (records, 0);
    }
    let mut off = SEGMENT_HEADER_BYTES as usize;
    while let Some(header) = data.get(off..off + RECORD_HEADER_BYTES as usize) {
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if len == 0 || len > MAX_RECORD_BYTES {
            break;
        }
        let body_start = off + RECORD_HEADER_BYTES as usize;
        let Some(body) = data.get(body_start..body_start + len as usize) else {
            break;
        };
        if crc32c(body) != crc {
            break;
        }
        records.push(body.to_vec());
        off = body_start + len as usize;
    }
    (records, off as u64)
}

/// The tail scan shared by [`Wal::open`] and [`Wal::heal`]: replays every
/// segment, truncates the first torn record and deletes later segments,
/// and reopens the tail segment positioned for appending.
struct TailScan {
    records: Vec<Vec<u8>>,
    truncated: u64,
    seg_index: u64,
    seg_len: u64,
    file: Box<dyn VfsFile>,
}

fn scan_and_repair(vfs: &Arc<dyn Vfs>, dir: &Path) -> io::Result<TailScan> {
    vfs.create_dir_all(dir)?;

    let mut indices: Vec<u64> = Vec::new();
    for name in vfs.list(dir)? {
        if let Some(idx) = segment_index(&name) {
            indices.push(idx);
        }
    }
    indices.sort_unstable();

    let mut records = Vec::new();
    let mut truncated = 0u64;
    let mut tail: Option<(u64, u64)> = None; // (segment index, valid length)
    for (pos, &idx) in indices.iter().enumerate() {
        let path = segment_path(dir, idx);
        let data = vfs.read(&path)?;
        let (mut segment_records, valid) = scan_segment(&data);
        records.append(&mut segment_records);
        if valid < data.len() as u64 {
            // Torn tail: truncate here, drop every later segment.
            truncated += data.len() as u64 - valid;
            for &later in &indices[pos + 1..] {
                let later_path = segment_path(dir, later);
                truncated += vfs.file_len(&later_path)?;
                vfs.remove(&later_path)?;
            }
            tail = Some((idx, valid));
            break;
        }
        tail = Some((idx, valid));
    }

    let (seg_index, seg_len, file) = match tail {
        Some((idx, valid)) => {
            let path = segment_path(dir, idx);
            let file = vfs.open_write(&path)?;
            if valid < SEGMENT_HEADER_BYTES {
                // Header itself was torn; start the segment over.
                file.set_len(0)?;
                let mut file = file;
                write_header(file.as_mut())?;
                file.sync_data()?;
                (idx, SEGMENT_HEADER_BYTES, file)
            } else {
                file.set_len(valid)?;
                file.sync_data()?;
                let mut file = file;
                file.seek_end()?;
                (idx, valid, file)
            }
        }
        None => {
            let path = segment_path(dir, 0);
            let mut file = vfs.create(&path)?;
            write_header(file.as_mut())?;
            file.sync_data()?;
            (0, SEGMENT_HEADER_BYTES, file)
        }
    };
    vfs.sync_dir(dir)?;

    Ok(TailScan {
        records,
        truncated,
        seg_index,
        seg_len,
        file,
    })
}

impl Wal {
    /// Opens (or creates) the log at `opts.dir`, replaying whatever is
    /// there: every valid record is returned oldest-first, and the first
    /// invalid record — a torn tail — truncates the log at that point.
    /// The returned `Wal` appends after the last valid record.
    pub fn open(opts: WalOptions) -> io::Result<(Wal, Replay)> {
        if opts.segment_bytes == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "wal segment_bytes must be non-zero",
            ));
        }
        let scan = scan_and_repair(&opts.vfs, &opts.dir)?;

        let replayed = scan.records.len() as u64;
        if replayed > 0 {
            wellknown::wal().replay_records.add(replayed);
        }
        let segments = scan.seg_index as usize + 1;
        let flusher = match opts.fsync {
            FsyncPolicy::Batch => Some(Flusher::spawn(scan.file.try_clone()?)),
            _ => None,
        };
        Ok((
            Wal {
                dir: opts.dir,
                fsync: opts.fsync,
                segment_bytes: opts.segment_bytes,
                vfs: opts.vfs,
                file: scan.file,
                seg_index: scan.seg_index,
                seg_len: scan.seg_len,
                dirty: false,
                scratch: Vec::new(),
                flusher,
                poisoned: None,
            },
            Replay {
                records: scan.records,
                truncated_bytes: scan.truncated,
                segments,
            },
        ))
    }

    /// Records the first durability failure and returns an error carrying
    /// its message. Subsequent appends/syncs keep failing with the same
    /// cause until [`heal`](Wal::heal).
    fn poison(&mut self, context: &str, err: &io::Error) -> io::Error {
        let cause = format!("{context}: {err}");
        if self.poisoned.is_none() {
            wellknown::wal().poisonings.inc();
            self.poisoned = Some(cause.clone());
        }
        io::Error::other(cause)
    }

    /// Fails fast if the writer is poisoned, absorbing any failure the
    /// background flusher recorded since the last check.
    fn check_poisoned(&mut self) -> io::Result<()> {
        if self.poisoned.is_none() {
            if let Some(flusher) = &self.flusher {
                if let Some(cause) = flusher.failure() {
                    wellknown::wal().poisonings.inc();
                    self.poisoned = Some(cause);
                }
            }
        }
        match &self.poisoned {
            Some(cause) => Err(io::Error::other(format!("wal poisoned: {cause}"))),
            None => Ok(()),
        }
    }

    /// The first durability failure, if the writer is poisoned. Also
    /// surfaces a background-flusher failure that has not yet been hit by
    /// an append or sync.
    pub fn poisoned(&mut self) -> Option<String> {
        let _ = self.check_poisoned();
        self.poisoned.clone()
    }

    /// Appends one record. Under `FsyncPolicy::Always` the record is on
    /// stable storage when this returns; otherwise it is buffered in the
    /// OS page cache until the next [`sync`](Wal::sync) (or writeback).
    pub fn append(&mut self, body: &[u8]) -> io::Result<()> {
        assert!(
            !body.is_empty() && body.len() <= MAX_RECORD_BYTES as usize,
            "wal record body must be 1..={MAX_RECORD_BYTES} bytes"
        );
        self.check_poisoned()?;
        if self.seg_len >= self.segment_bytes && self.seg_len > SEGMENT_HEADER_BYTES {
            self.rotate()?;
        }
        self.scratch.clear();
        self.scratch
            .extend_from_slice(&(body.len() as u32).to_le_bytes());
        self.scratch.extend_from_slice(&crc32c(body).to_le_bytes());
        self.scratch.extend_from_slice(body);
        if let Err(e) = self.file.write_all(&self.scratch) {
            // The failed write may have landed a partial record; the file
            // tail is torn until heal() truncates it.
            return Err(self.poison("wal append failed", &e));
        }
        self.seg_len += self.scratch.len() as u64;
        let m = wellknown::wal();
        m.appends.inc();
        m.bytes.add(self.scratch.len() as u64);
        match self.fsync {
            FsyncPolicy::Always => {
                if let Err(e) = self.file.sync_data() {
                    return Err(self.poison("wal fdatasync failed", &e));
                }
                m.fsyncs.inc();
            }
            FsyncPolicy::Batch => {
                self.dirty = true;
                if let Some(flusher) = &self.flusher {
                    flusher.note_appended(self.scratch.len() as u64);
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Milestone sync: pushes buffered appends to stable storage under the
    /// `batch` policy. A no-op under `always` (nothing is buffered) and
    /// `never` (durability is explicitly not requested). Fails — and stays
    /// failing — if the background flusher hit an fdatasync error since
    /// the last milestone: that data may already be gone from the page
    /// cache, so a successful sync here must not be reported as covering
    /// it.
    pub fn sync(&mut self) -> io::Result<()> {
        self.check_poisoned()?;
        if self.dirty && self.fsync == FsyncPolicy::Batch {
            if let Err(e) = self.file.sync_data() {
                return Err(self.poison("wal fdatasync failed", &e));
            }
            wellknown::wal().fsyncs.inc();
            self.dirty = false;
            if let Some(flusher) = &self.flusher {
                flusher.synced();
            }
        }
        Ok(())
    }

    /// Closes the current segment and starts the next. The finished
    /// segment is synced (unless policy is `never`) so rotation is also a
    /// durability milestone, and the new name is durably in the directory.
    fn rotate(&mut self) -> io::Result<()> {
        if self.fsync != FsyncPolicy::Never {
            if let Err(e) = self.file.sync_data() {
                return Err(self.poison("wal rotation fdatasync failed", &e));
            }
            wellknown::wal().fsyncs.inc();
            self.dirty = false;
        }
        let next_index = self.seg_index + 1;
        let path = segment_path(&self.dir, next_index);
        let file = match (|| -> io::Result<Box<dyn VfsFile>> {
            let mut file = self.vfs.create(&path)?;
            write_header(file.as_mut())?;
            if self.fsync != FsyncPolicy::Never {
                file.sync_data()?;
                self.vfs.sync_dir(&self.dir)?;
            }
            Ok(file)
        })() {
            Ok(file) => file,
            Err(e) => return Err(self.poison("wal rotation failed", &e)),
        };
        self.seg_index = next_index;
        if let Some(flusher) = &self.flusher {
            flusher.set_file(file.try_clone().ok());
        }
        self.file = file;
        self.seg_len = SEGMENT_HEADER_BYTES;
        Ok(())
    }

    /// Discards every record: deletes all segments and starts fresh at
    /// segment 0. Used once no live session depends on the log (all
    /// sessions committed or aborted), bounding disk usage.
    pub fn reset(&mut self) -> io::Result<()> {
        self.check_poisoned()?;
        let result = (|| -> io::Result<Box<dyn VfsFile>> {
            for name in self.vfs.list(&self.dir)? {
                if segment_index(&name).is_some() {
                    self.vfs.remove(&self.dir.join(name))?;
                }
            }
            let path = segment_path(&self.dir, 0);
            let mut file = self.vfs.create(&path)?;
            write_header(file.as_mut())?;
            file.sync_data()?;
            self.vfs.sync_dir(&self.dir)?;
            Ok(file)
        })();
        let file = match result {
            Ok(file) => file,
            Err(e) => return Err(self.poison("wal reset failed", &e)),
        };
        if let Some(flusher) = &self.flusher {
            flusher.set_file(file.try_clone().ok());
        }
        self.file = file;
        self.seg_index = 0;
        self.seg_len = SEGMENT_HEADER_BYTES;
        self.dirty = false;
        Ok(())
    }

    /// Attempts to recover a poisoned writer. Re-scans the log directory,
    /// truncating whatever torn tail the failed operation left (a short
    /// write lands a partial record; the scan cuts it exactly where the
    /// checksum stops validating), reopens the tail segment, and probes
    /// the storage with a real fdatasync. On success the writer is
    /// unpoisoned and appends resume after the last *valid* record; the
    /// records that were acknowledged before the failure are untouched.
    /// Returns the number of torn bytes discarded. A no-op returning 0 on
    /// a healthy writer.
    pub fn heal(&mut self) -> io::Result<u64> {
        if self.check_poisoned().is_ok() {
            return Ok(0);
        }
        // Stop the flusher from racing the rescan; it is re-pointed below.
        if let Some(flusher) = &self.flusher {
            flusher.set_file(None);
        }
        let scan = scan_and_repair(&self.vfs, &self.dir)?;
        // Probe: the re-opened tail must actually accept a data sync, or
        // the storage is still bad and the writer stays poisoned.
        scan.file.sync_data()?;
        if let Some(flusher) = &self.flusher {
            flusher.set_file(scan.file.try_clone().ok());
            flusher.clear_failure();
        }
        self.file = scan.file;
        self.seg_index = scan.seg_index;
        self.seg_len = scan.seg_len;
        self.dirty = false;
        self.poisoned = None;
        wellknown::wal().heals.inc();
        Ok(scan.truncated)
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Index of the segment currently appended to.
    pub fn current_segment(&self) -> u64 {
        self.seg_index
    }

    /// Bytes in the current segment, header included.
    pub fn current_segment_len(&self) -> u64 {
        self.seg_len
    }
}

fn write_header(file: &mut dyn VfsFile) -> io::Result<()> {
    file.write_all(MAGIC)?;
    file.write_all(&VERSION.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use epfis_faults::{FaultKind, FaultVfs, OpKind, Rule};
    use std::fs;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "epfis-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn opts(dir: &Path) -> WalOptions {
        WalOptions {
            dir: dir.to_path_buf(),
            fsync: FsyncPolicy::Never,
            segment_bytes: 64 << 20,
            vfs: StdVfs::shared(),
        }
    }

    #[test]
    fn fsync_policy_parses_and_displays() {
        for (s, p) in [
            ("always", FsyncPolicy::Always),
            ("batch", FsyncPolicy::Batch),
            ("never", FsyncPolicy::Never),
        ] {
            assert_eq!(s.parse::<FsyncPolicy>().unwrap(), p);
            assert_eq!(p.to_string(), s);
        }
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
    }

    #[test]
    fn append_then_replay_round_trips() {
        let dir = temp_dir("roundtrip");
        let bodies: Vec<Vec<u8>> = (0..100u32)
            .map(|i| i.to_le_bytes().repeat(1 + (i as usize % 7)))
            .collect();
        {
            let (mut wal, replay) = Wal::open(opts(&dir)).unwrap();
            assert!(replay.records.is_empty());
            for b in &bodies {
                wal.append(b).unwrap();
            }
            wal.sync().unwrap();
        }
        let (_wal, replay) = Wal::open(opts(&dir)).unwrap();
        assert_eq!(replay.records, bodies);
        assert_eq!(replay.truncated_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_splits_segments_and_replays_in_order() {
        let dir = temp_dir("rotate");
        let mut o = opts(&dir);
        o.segment_bytes = 256; // tiny segments force many rotations
        let bodies: Vec<Vec<u8>> = (0..200u32).map(|i| i.to_le_bytes().to_vec()).collect();
        {
            let (mut wal, _) = Wal::open(o.clone()).unwrap();
            for b in &bodies {
                wal.append(b).unwrap();
            }
            assert!(wal.current_segment() > 1, "expected rotations");
        }
        let segs = fs::read_dir(&dir).unwrap().count();
        assert!(segs > 2, "expected multiple segment files, got {segs}");
        let (_wal, replay) = Wal::open(o).unwrap();
        assert_eq!(replay.records, bodies);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_record_lands_whole_in_one_segment() {
        let dir = temp_dir("oversize");
        let mut o = opts(&dir);
        o.segment_bytes = 64;
        let big = vec![0xABu8; 500];
        {
            let (mut wal, _) = Wal::open(o.clone()).unwrap();
            wal.append(&big).unwrap();
            wal.append(b"after").unwrap();
        }
        let (_wal, replay) = Wal::open(o).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[0], big);
        assert_eq!(replay.records[1], b"after");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_at_every_offset_never_loses_a_prefix() {
        // The core torn-tail property: chop the (single-segment) log at
        // every byte offset; replay must yield a prefix of the appended
        // records and never error or panic.
        let dir = temp_dir("truncate");
        let bodies: Vec<Vec<u8>> = (0..10u32).map(|i| vec![i as u8; 3 + i as usize]).collect();
        {
            let (mut wal, _) = Wal::open(opts(&dir)).unwrap();
            for b in &bodies {
                wal.append(b).unwrap();
            }
        }
        let seg = segment_path(&dir, 0);
        let full = fs::read(&seg).unwrap();
        for cut in 0..=full.len() {
            fs::write(&seg, &full[..cut]).unwrap();
            let (_wal, replay) = Wal::open(opts(&dir)).unwrap();
            assert!(
                replay.records.len() <= bodies.len(),
                "cut={cut}: more records than written"
            );
            assert_eq!(
                replay.records,
                bodies[..replay.records.len()],
                "cut={cut}: replay is not a prefix"
            );
            // Whatever survived must itself replay cleanly (truncation
            // repaired the tail).
            let (_wal2, again) = Wal::open(opts(&dir)).unwrap();
            assert_eq!(again.records, replay.records, "cut={cut}: unstable repair");
            assert_eq!(again.truncated_bytes, 0, "cut={cut}: repair left garbage");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_byte_truncates_from_that_record() {
        let dir = temp_dir("corrupt");
        let bodies: Vec<Vec<u8>> = (0..5u32).map(|i| vec![i as u8; 16]).collect();
        {
            let (mut wal, _) = Wal::open(opts(&dir)).unwrap();
            for b in &bodies {
                wal.append(b).unwrap();
            }
        }
        let seg = segment_path(&dir, 0);
        let mut data = fs::read(&seg).unwrap();
        // Flip a byte inside the third record's body.
        let off = SEGMENT_HEADER_BYTES as usize + 2 * (8 + 16) + 8 + 4;
        data[off] ^= 0x40;
        fs::write(&seg, &data).unwrap();
        let (_wal, replay) = Wal::open(opts(&dir)).unwrap();
        assert_eq!(replay.records, bodies[..2]);
        assert!(replay.truncated_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_drops_later_segments() {
        let dir = temp_dir("multiseg-torn");
        let mut o = opts(&dir);
        o.segment_bytes = 128;
        let bodies: Vec<Vec<u8>> = (0..40u32).map(|i| i.to_le_bytes().to_vec()).collect();
        {
            let (mut wal, _) = Wal::open(o.clone()).unwrap();
            for b in &bodies {
                wal.append(b).unwrap();
            }
            assert!(wal.current_segment() >= 2);
        }
        // Corrupt the first segment's second record: everything from there
        // on — including whole later segments — must vanish.
        let seg0 = segment_path(&dir, 0);
        let mut data = fs::read(&seg0).unwrap();
        data[SEGMENT_HEADER_BYTES as usize + 8 + 12 + 2] ^= 1;
        fs::write(&seg0, &data).unwrap();
        let (wal, replay) = Wal::open(o).unwrap();
        assert_eq!(replay.records, bodies[..1]);
        assert_eq!(wal.current_segment(), 0);
        assert_eq!(
            fs::read_dir(&dir)
                .unwrap()
                .filter(
                    |e| segment_index(e.as_ref().unwrap().file_name().to_str().unwrap()).is_some()
                )
                .count(),
            1
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_resumes_after_torn_tail_repair() {
        let dir = temp_dir("resume-append");
        {
            let (mut wal, _) = Wal::open(opts(&dir)).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"second").unwrap();
        }
        // Tear the second record's tail off.
        let seg = segment_path(&dir, 0);
        let data = fs::read(&seg).unwrap();
        fs::write(&seg, &data[..data.len() - 3]).unwrap();
        {
            let (mut wal, replay) = Wal::open(opts(&dir)).unwrap();
            assert_eq!(replay.records, vec![b"first".to_vec()]);
            wal.append(b"third").unwrap();
        }
        let (_wal, replay) = Wal::open(opts(&dir)).unwrap();
        assert_eq!(replay.records, vec![b"first".to_vec(), b"third".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_discards_everything() {
        let dir = temp_dir("reset");
        let mut o = opts(&dir);
        o.segment_bytes = 64;
        let (mut wal, _) = Wal::open(o.clone()).unwrap();
        for i in 0..20u32 {
            wal.append(&i.to_le_bytes()).unwrap();
        }
        wal.reset().unwrap();
        wal.append(b"fresh").unwrap();
        drop(wal);
        let (_wal, replay) = Wal::open(o).unwrap();
        assert_eq!(replay.records, vec![b"fresh".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn always_policy_round_trips() {
        let dir = temp_dir("always");
        let mut o = opts(&dir);
        o.fsync = FsyncPolicy::Always;
        {
            let (mut wal, _) = Wal::open(o.clone()).unwrap();
            wal.append(b"durable").unwrap();
        }
        let (_wal, replay) = Wal::open(o).unwrap();
        assert_eq!(replay.records, vec![b"durable".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_segment_bytes_is_rejected() {
        let dir = temp_dir("zeroseg");
        let mut o = opts(&dir);
        o.segment_bytes = 0;
        assert!(Wal::open(o).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_names_parse_strictly() {
        assert_eq!(segment_index("wal-000123.seg"), Some(123));
        assert_eq!(segment_index("wal-0.seg"), Some(0));
        assert_eq!(segment_index("wal-.seg"), None);
        assert_eq!(segment_index("wal-12a.seg"), None);
        assert_eq!(segment_index("catalog.scat"), None);
    }

    // ------------------------------------------------------------------
    // Fault injection: poisoning, the flusher regression, heal.
    // ------------------------------------------------------------------

    fn fault_opts(dir: &Path, fsync: FsyncPolicy, fault: &FaultVfs) -> WalOptions {
        WalOptions {
            dir: dir.to_path_buf(),
            fsync,
            segment_bytes: 64 << 20,
            vfs: fault.clone().shared(),
        }
    }

    #[test]
    fn failed_append_poisons_until_heal() {
        let dir = temp_dir("poison-append");
        let fault = FaultVfs::new();
        let (mut wal, _) = Wal::open(fault_opts(&dir, FsyncPolicy::Never, &fault)).unwrap();
        wal.append(b"good").unwrap();
        fault
            .schedule()
            .push(Rule::new(FaultKind::Enospc).on_op(OpKind::Write).times(1));
        let err = wal.append(b"doomed").unwrap_err();
        assert!(err.to_string().contains("append failed"), "{err}");
        // The fault healed (times=1) but the writer must stay poisoned:
        // the failed append may have landed partial bytes.
        let err = wal.append(b"still-blocked").unwrap_err();
        assert!(err.to_string().contains("wal poisoned"), "{err}");
        assert!(wal.poisoned().is_some());
        wal.heal().unwrap();
        wal.append(b"after-heal").unwrap();
        drop(wal);
        let (_wal, replay) = Wal::open(opts(&dir)).unwrap();
        assert_eq!(
            replay.records,
            vec![b"good".to_vec(), b"after-heal".to_vec()]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_write_tears_tail_and_heal_truncates_it() {
        let dir = temp_dir("poison-short");
        let fault = FaultVfs::new();
        let (mut wal, _) = Wal::open(fault_opts(&dir, FsyncPolicy::Never, &fault)).unwrap();
        wal.append(b"keep-me").unwrap();
        fault.schedule().push(
            Rule::new(FaultKind::ShortWrite(5))
                .on_op(OpKind::Write)
                .times(1),
        );
        assert!(wal
            .append(b"torn-record-body")
            .unwrap_err()
            .to_string()
            .contains("append"));
        // The partial record is physically on disk right now.
        let len_with_tear = fs::metadata(segment_path(&dir, 0)).unwrap().len();
        let torn = wal.heal().unwrap();
        assert_eq!(torn, 5, "heal must truncate exactly the torn bytes");
        assert!(fs::metadata(segment_path(&dir, 0)).unwrap().len() < len_with_tear);
        wal.append(b"clean-after").unwrap();
        drop(wal);
        let (_wal, replay) = Wal::open(opts(&dir)).unwrap();
        assert_eq!(
            replay.records,
            vec![b"keep-me".to_vec(), b"clean-after".to_vec()]
        );
        assert_eq!(replay.truncated_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn milestone_sync_failure_poisons() {
        let dir = temp_dir("poison-sync");
        let fault = FaultVfs::new();
        let (mut wal, _) = Wal::open(fault_opts(&dir, FsyncPolicy::Batch, &fault)).unwrap();
        wal.append(b"buffered").unwrap();
        fault
            .schedule()
            .push(Rule::new(FaultKind::Eio).on_op(OpKind::SyncData).times(1));
        assert!(wal.sync().is_err());
        // Poisoned even though the fault healed: that sync never covered
        // the appended data.
        assert!(wal.sync().unwrap_err().to_string().contains("wal poisoned"));
        wal.heal().unwrap();
        wal.sync().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn background_flusher_fsync_failure_fails_next_milestone_sync() {
        // The fsyncgate regression: before the fix, a failed sync_data on
        // the flusher's duplicate fd was silently swallowed and the next
        // milestone sync reported success it could not honour.
        let dir = temp_dir("flusher-gate");
        let fault = FaultVfs::new();
        let (mut wal, _) = Wal::open(fault_opts(&dir, FsyncPolicy::Batch, &fault)).unwrap();
        // Every sync_data fails from here on (foreground and background).
        fault
            .schedule()
            .push(Rule::new(FaultKind::Eio).on_op(OpKind::SyncData));
        // Push enough bytes through to cross FLUSH_THRESHOLD_BYTES and
        // wake the background flusher.
        let body = vec![0x5A; 64 * 1024];
        for _ in 0..((FLUSH_THRESHOLD_BYTES / (64 * 1024)) + 2) {
            if wal.append(&body).is_err() {
                break; // flusher failure already absorbed — also a pass
            }
        }
        // Give the flusher thread a moment to hit the fault.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while wal.poisoned().is_none() && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(
            wal.poisoned().is_some(),
            "background fsync failure must poison the writer"
        );
        let err = wal.sync().unwrap_err();
        assert!(
            err.to_string().contains("poisoned"),
            "milestone sync must fail after a background fsync error: {err}"
        );
        // Heal both the schedule and the writer; sync works again.
        fault.schedule().heal();
        wal.heal().unwrap();
        wal.append(b"recovered").unwrap();
        wal.sync().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_failure_poisons_and_heals_cleanly() {
        let dir = temp_dir("poison-rotate");
        let fault = FaultVfs::new();
        let mut o = fault_opts(&dir, FsyncPolicy::Never, &fault);
        o.segment_bytes = 64;
        let (mut wal, _) = Wal::open(o).unwrap();
        for i in 0..8u32 {
            wal.append(&i.to_le_bytes().repeat(4)).unwrap();
        }
        let appended = 8;
        fault
            .schedule()
            .push(Rule::new(FaultKind::Enospc).on_op(OpKind::Create).times(1));
        // Next append needs a rotation, whose segment create fails.
        let mut extra = 0;
        let err = loop {
            match wal.append(b"rotation-trigger") {
                Ok(()) => extra += 1,
                Err(e) => break e,
            }
        };
        assert!(err.to_string().contains("rotation failed"), "{err}");
        assert!(wal
            .append(b"x")
            .unwrap_err()
            .to_string()
            .contains("poisoned"));
        wal.heal().unwrap();
        wal.append(b"post-heal").unwrap();
        drop(wal);
        let (_wal, replay) = Wal::open(opts(&dir)).unwrap();
        assert_eq!(replay.records.len(), appended + extra + 1);
        assert_eq!(replay.records.last().unwrap(), b"post-heal");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn heal_on_healthy_writer_is_a_noop() {
        let dir = temp_dir("heal-noop");
        let (mut wal, _) = Wal::open(opts(&dir)).unwrap();
        wal.append(b"a").unwrap();
        assert_eq!(wal.heal().unwrap(), 0);
        wal.append(b"b").unwrap();
        drop(wal);
        let (_wal, replay) = Wal::open(opts(&dir)).unwrap();
        assert_eq!(replay.records, vec![b"a".to_vec(), b"b".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn heal_fails_while_storage_still_bad() {
        let dir = temp_dir("heal-still-bad");
        let fault = FaultVfs::new();
        let (mut wal, _) = Wal::open(fault_opts(&dir, FsyncPolicy::Never, &fault)).unwrap();
        fault
            .schedule()
            .push(Rule::new(FaultKind::Enospc).on_op(OpKind::Write));
        assert!(wal.append(b"x").is_err());
        // The disk is still full: heal's probe must fail and the writer
        // must stay poisoned.
        fault.schedule().heal();
        fault
            .schedule()
            .push(Rule::new(FaultKind::Eio).on_op(OpKind::SyncData));
        assert!(wal.heal().is_err());
        assert!(wal
            .append(b"y")
            .unwrap_err()
            .to_string()
            .contains("poisoned"));
        fault.schedule().heal();
        wal.heal().unwrap();
        wal.append(b"z").unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }
}
