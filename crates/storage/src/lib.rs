//! Heap-table storage substrate for the EPFIS reproduction.
//!
//! The paper's estimation problem is about *data page fetches*: an index scan
//! produces a sequence of record identifiers (RIDs), each RID names a slot on
//! a data page, and fetching the record faults the page into a finite LRU
//! buffer pool unless it is already resident. This crate provides the pieces
//! of a real storage engine needed to *execute* such scans and measure the
//! true fetch counts:
//!
//! * [`page`] — byte-level slotted pages with a slot directory,
//! * [`record`] — a small typed row codec (schema + values),
//! * [`disk`] — the backing "disk" ([`disk::DiskManager`]) with physical I/O
//!   accounting; an in-memory implementation is provided,
//! * [`replacement`] — pluggable buffer replacement policies (LRU as the
//!   paper assumes, plus FIFO and Clock for ablation studies),
//! * [`bufferpool`] — the buffer-pool manager that mediates all page access
//!   and counts hits, misses, and physical reads,
//! * [`heap`] — heap files (unordered collections of records) built on top of
//!   the above.
//!
//! The core types are deterministic and single-threaded by design — the
//! point is faithful accounting — and the buffer pool's LRU miss counts are
//! cross-validated elsewhere against the `epfis-lrusim` stack simulator,
//! the analytical core of the paper. For the multi-user setting (§6 future
//! work), [`concurrent::SharedBufferPool`] lets several scan threads share
//! one pool behind a latch.

pub mod bufferpool;
pub mod concurrent;
pub mod disk;
pub mod heap;
pub mod page;
pub mod record;
pub mod replacement;

pub use bufferpool::{BufferPool, PoolConfig, PoolStats};
pub use concurrent::SharedBufferPool;
pub use disk::{DiskManager, DiskStats, InMemoryDisk};
pub use heap::{HeapFile, HeapScan};
pub use page::{PageBuf, PageId, RecordId, SlotId, PAGE_SIZE};
pub use record::{ColumnType, Record, Schema, Value};
pub use replacement::{ClockPolicy, FifoPolicy, LruPolicy, ReplacementPolicy};

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The requested page does not exist on the backing disk.
    PageNotFound(PageId),
    /// The requested slot does not exist or has been deleted.
    SlotNotFound(RecordId),
    /// The record is too large to ever fit in a page.
    RecordTooLarge { bytes: usize },
    /// Every frame in the buffer pool is pinned; nothing can be evicted.
    PoolExhausted,
    /// A record failed to decode against the supplied schema.
    CorruptRecord(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::PageNotFound(p) => write!(f, "page {p} not found"),
            StorageError::SlotNotFound(rid) => write!(f, "record {rid} not found"),
            StorageError::RecordTooLarge { bytes } => {
                write!(f, "record of {bytes} bytes exceeds page capacity")
            }
            StorageError::PoolExhausted => write!(f, "all buffer frames are pinned"),
            StorageError::CorruptRecord(msg) => write!(f, "corrupt record: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenient result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
