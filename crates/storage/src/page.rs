//! Byte-level slotted pages.
//!
//! A page is a fixed-size byte array with a small header, a slot directory
//! growing from the front, and record payloads growing from the back:
//!
//! ```text
//! +--------+--------------------+..........free..........+----------+---------+
//! | header | slot 0 | slot 1 .. |                        | record 1 | record 0|
//! +--------+--------------------+........................+----------+---------+
//! ```
//!
//! * header: `slot_count: u16`, `free_end: u16` (offset one past the free
//!   region; records live in `[free_end, PAGE_SIZE)`).
//! * slot entry: `offset: u16`, `len: u16`. A slot with `offset == 0` is a
//!   tombstone (offset 0 can never hold a record because the header lives
//!   there).
//!
//! Deleting a record leaves a tombstone and does not compact; `compact` can
//! be called to reclaim the space. This mirrors a typical slotted-page design
//! (e.g. PostgreSQL's line pointers) at a miniature scale.

use crate::{Result, StorageError};

/// Size in bytes of every page in the system.
pub const PAGE_SIZE: usize = 4096;

const HEADER_BYTES: usize = 4;
const SLOT_BYTES: usize = 4;

/// Identifier of a page on the backing disk (0-based, dense).
pub type PageId = u32;

/// Identifier of a slot within a page.
pub type SlotId = u16;

/// A record identifier: which page, which slot.
///
/// This is the unit an index stores per entry and the unit a scan resolves
/// through the buffer pool. The paper's page-reference traces are exactly the
/// `page` components of the RIDs an index scan emits, in emission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId {
    /// The data page holding the record.
    pub page: PageId,
    /// The slot within that page.
    pub slot: SlotId,
}

impl RecordId {
    /// Creates a record identifier from its parts.
    pub const fn new(page: PageId, slot: SlotId) -> Self {
        RecordId { page, slot }
    }
}

impl std::fmt::Display for RecordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.page, self.slot)
    }
}

/// An owned page buffer plus the slotted-page operations over it.
///
/// `PageBuf` borrows no storage machinery: it interprets a `[u8; PAGE_SIZE]`
/// in place, so the buffer pool can hand out raw frames and callers wrap them
/// on demand with [`PageBuf::from_bytes`] or the free functions in this module.
#[derive(Clone)]
pub struct PageBuf {
    bytes: Box<[u8; PAGE_SIZE]>,
}

impl Default for PageBuf {
    fn default() -> Self {
        Self::new()
    }
}

impl PageBuf {
    /// Creates an empty, formatted page.
    pub fn new() -> Self {
        let mut p = PageBuf {
            bytes: vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap(),
        };
        format_page(p.bytes.as_mut_slice());
        p
    }

    /// Wraps an existing byte image (assumed already formatted).
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), PAGE_SIZE, "page image must be PAGE_SIZE bytes");
        let mut boxed = vec![0u8; PAGE_SIZE].into_boxed_slice();
        boxed.copy_from_slice(bytes);
        PageBuf {
            bytes: boxed.try_into().unwrap(),
        }
    }

    /// The raw byte image.
    pub fn as_bytes(&self) -> &[u8] {
        self.bytes.as_slice()
    }

    /// The raw byte image, mutably.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        self.bytes.as_mut_slice()
    }

    /// Number of slots in the directory (including tombstones).
    pub fn slot_count(&self) -> u16 {
        slot_count(self.as_bytes())
    }

    /// Number of live (non-deleted) records.
    pub fn live_count(&self) -> u16 {
        let b = self.as_bytes();
        (0..slot_count(b)).filter(|&s| slot(b, s).is_some()).count() as u16
    }

    /// Contiguous free bytes available for a new record **and** its slot.
    pub fn free_space(&self) -> usize {
        free_space(self.as_bytes())
    }

    /// Whether a record of `len` bytes fits (counting a fresh slot entry).
    pub fn fits(&self, len: usize) -> bool {
        fits(self.as_bytes(), len)
    }

    /// Inserts a record payload, returning its slot.
    pub fn insert(&mut self, payload: &[u8]) -> Result<SlotId> {
        insert(self.as_bytes_mut(), payload)
    }

    /// Returns the payload stored in `slot`, if live.
    pub fn get(&self, slot: SlotId) -> Option<&[u8]> {
        get(self.as_bytes(), slot)
    }

    /// Deletes the record in `slot`, leaving a tombstone.
    pub fn delete(&mut self, slot: SlotId) -> Result<()> {
        delete(self.as_bytes_mut(), slot)
    }

    /// Compacts payloads to the end of the page, preserving slot numbers.
    pub fn compact(&mut self) {
        compact(self.as_bytes_mut());
    }

    /// Iterates `(slot, payload)` over live records in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &[u8])> {
        let b = self.as_bytes();
        (0..slot_count(b)).filter_map(move |s| slot(b, s).map(|(off, len)| (s, &b[off..off + len])))
    }
}

/// Formats a raw byte slice as an empty slotted page.
pub fn format_page(bytes: &mut [u8]) {
    debug_assert_eq!(bytes.len(), PAGE_SIZE);
    write_u16(bytes, 0, 0); // slot_count
    write_u16(bytes, 2, PAGE_SIZE as u16); // free_end
}

/// Number of slots in the directory of a raw page image.
pub fn slot_count(bytes: &[u8]) -> u16 {
    read_u16(bytes, 0)
}

fn free_end(bytes: &[u8]) -> usize {
    read_u16(bytes, 2) as usize
}

fn slot_entry_pos(s: SlotId) -> usize {
    HEADER_BYTES + (s as usize) * SLOT_BYTES
}

/// Returns `(offset, len)` of a live slot in a raw page image.
pub fn slot(bytes: &[u8], s: SlotId) -> Option<(usize, usize)> {
    if s >= slot_count(bytes) {
        return None;
    }
    let pos = slot_entry_pos(s);
    let off = read_u16(bytes, pos) as usize;
    if off == 0 {
        return None; // tombstone
    }
    let len = read_u16(bytes, pos + 2) as usize;
    Some((off, len))
}

/// Free bytes between the slot directory and the payload region.
pub fn free_space(bytes: &[u8]) -> usize {
    let dir_end = HEADER_BYTES + slot_count(bytes) as usize * SLOT_BYTES;
    free_end(bytes).saturating_sub(dir_end)
}

/// Whether a payload of `len` bytes plus a fresh slot entry fits.
pub fn fits(bytes: &[u8], len: usize) -> bool {
    free_space(bytes) >= len + SLOT_BYTES
}

/// Inserts `payload` into a raw page image, returning the new slot id.
pub fn insert(bytes: &mut [u8], payload: &[u8]) -> Result<SlotId> {
    let max_payload = PAGE_SIZE - HEADER_BYTES - SLOT_BYTES;
    if payload.len() > max_payload {
        return Err(StorageError::RecordTooLarge {
            bytes: payload.len(),
        });
    }
    if !fits(bytes, payload.len()) {
        // The caller treats this as "page full"; distinguishable from the
        // impossible case above because the payload *could* fit in an empty
        // page.
        return Err(StorageError::RecordTooLarge {
            bytes: payload.len(),
        });
    }
    let count = slot_count(bytes);
    let new_end = free_end(bytes) - payload.len();
    bytes[new_end..new_end + payload.len()].copy_from_slice(payload);
    let pos = slot_entry_pos(count);
    write_u16(bytes, pos, new_end as u16);
    write_u16(bytes, pos + 2, payload.len() as u16);
    write_u16(bytes, 0, count + 1);
    write_u16(bytes, 2, new_end as u16);
    Ok(count)
}

/// Returns the payload stored in `slot` of a raw page image, if live.
pub fn get(bytes: &[u8], s: SlotId) -> Option<&[u8]> {
    slot(bytes, s).map(|(off, len)| &bytes[off..off + len])
}

/// Deletes the record in `slot`, leaving a tombstone.
pub fn delete(bytes: &mut [u8], s: SlotId) -> Result<()> {
    if slot(bytes, s).is_none() {
        return Err(StorageError::SlotNotFound(RecordId::new(0, s)));
    }
    let pos = slot_entry_pos(s);
    write_u16(bytes, pos, 0);
    write_u16(bytes, pos + 2, 0);
    Ok(())
}

/// Moves all live payloads flush against the end of the page.
///
/// Slot ids are stable across compaction (only offsets change), so RIDs held
/// by indexes remain valid.
pub fn compact(bytes: &mut [u8]) {
    let count = slot_count(bytes);
    // Collect live payloads (slot, bytes) then rewrite back-to-front.
    let mut live: Vec<(SlotId, Vec<u8>)> = Vec::new();
    for s in 0..count {
        if let Some((off, len)) = slot(bytes, s) {
            live.push((s, bytes[off..off + len].to_vec()));
        }
    }
    let mut end = PAGE_SIZE;
    for (s, payload) in &live {
        end -= payload.len();
        bytes[end..end + payload.len()].copy_from_slice(payload);
        let pos = slot_entry_pos(*s);
        write_u16(bytes, pos, end as u16);
        write_u16(bytes, pos + 2, payload.len() as u16);
    }
    write_u16(bytes, 2, end as u16);
}

#[inline]
fn read_u16(bytes: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([bytes[at], bytes[at + 1]])
}

#[inline]
fn write_u16(bytes: &mut [u8], at: usize, v: u16) {
    bytes[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_page_has_no_slots_and_full_free_space() {
        let p = PageBuf::new();
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.live_count(), 0);
        assert_eq!(p.free_space(), PAGE_SIZE - HEADER_BYTES);
    }

    #[test]
    fn insert_then_get_round_trips() {
        let mut p = PageBuf::new();
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(s0, 0);
        assert_eq!(s1, 1);
        assert_eq!(p.get(s0), Some(&b"hello"[..]));
        assert_eq!(p.get(s1), Some(&b"world!"[..]));
        assert_eq!(p.live_count(), 2);
    }

    #[test]
    fn payloads_grow_from_the_back() {
        let mut p = PageBuf::new();
        p.insert(&[0xAA; 10]).unwrap();
        p.insert(&[0xBB; 10]).unwrap();
        let (off0, _) = slot(p.as_bytes(), 0).unwrap();
        let (off1, _) = slot(p.as_bytes(), 1).unwrap();
        assert_eq!(off0, PAGE_SIZE - 10);
        assert_eq!(off1, PAGE_SIZE - 20);
    }

    #[test]
    fn delete_leaves_tombstone_and_get_returns_none() {
        let mut p = PageBuf::new();
        let s = p.insert(b"doomed").unwrap();
        p.delete(s).unwrap();
        assert_eq!(p.get(s), None);
        assert_eq!(p.live_count(), 0);
        // Slot directory length is unchanged.
        assert_eq!(p.slot_count(), 1);
        // Deleting again is an error.
        assert!(p.delete(s).is_err());
    }

    #[test]
    fn insert_after_delete_gets_fresh_slot() {
        let mut p = PageBuf::new();
        let s0 = p.insert(b"a").unwrap();
        p.delete(s0).unwrap();
        let s1 = p.insert(b"b").unwrap();
        assert_ne!(s0, s1);
        assert_eq!(p.get(s1), Some(&b"b"[..]));
    }

    #[test]
    fn fills_up_and_reports_full() {
        let mut p = PageBuf::new();
        let payload = [7u8; 100];
        let mut n = 0;
        while p.fits(payload.len()) {
            p.insert(&payload).unwrap();
            n += 1;
        }
        // 4096 - 4 header = 4092; each record costs 100 + 4 slot = 104.
        assert_eq!(n, (PAGE_SIZE - HEADER_BYTES) / 104);
        assert!(p.insert(&payload).is_err());
    }

    #[test]
    fn oversized_record_is_rejected() {
        let mut p = PageBuf::new();
        assert!(matches!(
            p.insert(&vec![0u8; PAGE_SIZE]),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn compact_reclaims_deleted_space_and_preserves_slots() {
        let mut p = PageBuf::new();
        let s0 = p.insert(&[1u8; 500]).unwrap();
        let s1 = p.insert(&[2u8; 500]).unwrap();
        let s2 = p.insert(&[3u8; 500]).unwrap();
        p.delete(s1).unwrap();
        let before = p.free_space();
        p.compact();
        let after = p.free_space();
        assert!(after >= before + 500, "compaction should reclaim the hole");
        assert_eq!(p.get(s0), Some(&[1u8; 500][..]));
        assert_eq!(p.get(s2), Some(&[3u8; 500][..]));
        assert_eq!(p.get(s1), None);
    }

    #[test]
    fn iter_skips_tombstones_in_slot_order() {
        let mut p = PageBuf::new();
        p.insert(b"a").unwrap();
        let s1 = p.insert(b"b").unwrap();
        p.insert(b"c").unwrap();
        p.delete(s1).unwrap();
        let got: Vec<(SlotId, Vec<u8>)> = p.iter().map(|(s, b)| (s, b.to_vec())).collect();
        assert_eq!(got, vec![(0, b"a".to_vec()), (2, b"c".to_vec())]);
    }

    #[test]
    fn from_bytes_round_trips_image() {
        let mut p = PageBuf::new();
        p.insert(b"persisted").unwrap();
        let image = p.as_bytes().to_vec();
        let q = PageBuf::from_bytes(&image);
        assert_eq!(q.get(0), Some(&b"persisted"[..]));
    }

    #[test]
    fn zero_length_payload_is_legal() {
        let mut p = PageBuf::new();
        let s = p.insert(b"").unwrap();
        assert_eq!(p.get(s), Some(&b""[..]));
        assert_eq!(p.live_count(), 1);
    }
}
