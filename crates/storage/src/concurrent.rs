//! A thread-safe wrapper around the buffer pool.
//!
//! The single-threaded [`BufferPool`] is the unit of
//! study (the paper models one scan's fetches); [`SharedBufferPool`] wraps
//! it in a mutex so several scan threads can share one pool — the
//! *multi-user contention* setting §6 lists as future work. Coarse-grained
//! locking is deliberate: contention effects on the *replacement state* are
//! what the experiments measure, and a single lock keeps the pool's
//! accounting exactly as trustworthy as the sequential version (every
//! interleaving is some serial order of page accesses).

use crate::bufferpool::{BufferPool, PoolConfig, PoolStats};
use crate::disk::DiskManager;
use crate::page::PageId;
use crate::Result;
use std::sync::Mutex;

/// A mutex-guarded buffer pool shareable across scan threads.
pub struct SharedBufferPool<D: DiskManager> {
    inner: Mutex<BufferPool<D>>,
}

impl<D: DiskManager + Send> SharedBufferPool<D> {
    /// Creates a shared pool over `disk`.
    pub fn new(disk: D, config: PoolConfig) -> Self {
        SharedBufferPool {
            inner: Mutex::new(BufferPool::new(disk, config)),
        }
    }

    /// Runs `f` over an immutable view of page `id` (pool locked for the
    /// duration — page accesses serialize, as they would through a latch).
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        self.inner
            .lock()
            .expect("pool lock poisoned")
            .with_page(id, f)
    }

    /// Runs `f` over a mutable view of page `id`.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        self.inner
            .lock()
            .expect("pool lock poisoned")
            .with_page_mut(id, f)
    }

    /// Access counters so far.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().expect("pool lock poisoned").stats()
    }

    /// Tears the pool down, flushing dirty pages, and returns the disk.
    pub fn into_disk(self) -> Result<D> {
        self.inner
            .into_inner()
            .expect("pool lock poisoned")
            .into_disk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;
    use crate::page;

    fn disk_with(pages: u32) -> InMemoryDisk {
        let mut d = InMemoryDisk::new();
        for _ in 0..pages {
            d.allocate_page();
        }
        d
    }

    #[test]
    fn serial_use_matches_plain_pool() {
        let trace: Vec<u32> = (0..500u32)
            .map(|i| i.wrapping_mul(2654435761) % 24)
            .collect();
        let shared = SharedBufferPool::new(disk_with(24), PoolConfig::lru(8));
        for &p in &trace {
            shared.with_page(p, |_| ()).unwrap();
        }
        assert_eq!(shared.stats().misses, epfis_lrusim::simulate_lru(&trace, 8));
    }

    #[test]
    fn concurrent_scans_preserve_accounting_invariants() {
        let shared = SharedBufferPool::new(disk_with(64), PoolConfig::lru(16));
        let threads = 4;
        let per_thread = 2_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let pool = &shared;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let pid = ((i.wrapping_mul(31).wrapping_add(t * 17)) % 64) as u32;
                        pool.with_page(pid, |_| ()).unwrap();
                    }
                });
            }
        });
        let stats = shared.stats();
        assert_eq!(stats.requests, threads * per_thread);
        assert_eq!(stats.hits + stats.misses, stats.requests);
        // All 64 pages were touched; each needs at least one fetch.
        assert!(stats.misses >= 64);
        // With 16 frames over 64 hot pages the pool must evict heavily, but
        // misses can never exceed requests.
        assert!(stats.misses <= stats.requests);
    }

    #[test]
    fn concurrent_writers_never_lose_records() {
        let shared = SharedBufferPool::new(disk_with(8), PoolConfig::lru(2));
        let threads = 4u8;
        let per_thread = 50u8;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let pool = &shared;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let pid = (i % 8) as u32;
                        pool.with_page_mut(pid, |b| {
                            page::insert(b, &[t, i]).unwrap();
                        })
                        .unwrap();
                    }
                });
            }
        });
        // Every insert survived eviction/write-back churn.
        let mut disk = shared.into_disk().unwrap();
        let mut total = 0usize;
        let mut buf = vec![0u8; crate::PAGE_SIZE];
        for pid in 0..8u32 {
            crate::DiskManager::read_page(&mut disk, pid, &mut buf).unwrap();
            total += (0..page::slot_count(&buf))
                .filter(|&s| page::slot(&buf, s).is_some())
                .count();
        }
        assert_eq!(total, threads as usize * per_thread as usize);
    }

    #[test]
    fn contention_costs_extra_misses_vs_isolation() {
        // Two disjoint looping scans: alone each fits in the pool; together
        // they thrash it. A barrier forces genuine overlap each round, so
        // the outcome does not depend on scheduler luck.
        let rounds = 30u32;
        let run_alone = |offset: u32| {
            let pool = SharedBufferPool::new(disk_with(64), PoolConfig::lru(20));
            for _ in 0..rounds {
                for p in 0..16u32 {
                    pool.with_page(offset + p, |_| ()).unwrap();
                }
            }
            pool.stats().misses
        };
        let alone = run_alone(0) + run_alone(16);
        assert_eq!(alone, 32, "each loop fits alone: cold misses only");

        let shared = SharedBufferPool::new(disk_with(64), PoolConfig::lru(20));
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            for offset in [0u32, 16] {
                let pool = &shared;
                let barrier = &barrier;
                scope.spawn(move || {
                    for _ in 0..rounds {
                        barrier.wait();
                        for p in 0..16u32 {
                            pool.with_page(offset + p, |_| ()).unwrap();
                        }
                    }
                });
            }
        });
        let together = shared.stats().misses;
        assert!(
            together > alone,
            "sharing 20 frames across two 16-page loops must thrash: {together} vs {alone}"
        );
    }
}
