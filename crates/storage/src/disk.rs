//! The backing "disk": page-granular storage with physical I/O accounting.
//!
//! The paper's cost metric is the number of page *fetches* from secondary
//! storage. [`DiskManager::read_page`] is exactly that event, so the
//! [`DiskStats`] counters of a run are the ground truth every estimator is
//! judged against. The provided [`InMemoryDisk`] keeps page images in memory
//! (this is a simulation study; latency is irrelevant, counts are not).

use crate::page::{PageId, PAGE_SIZE};
use crate::{Result, StorageError};

/// Physical I/O counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DiskStats {
    /// Number of pages read from the disk (the paper's "page fetches").
    pub reads: u64,
    /// Number of pages written back.
    pub writes: u64,
    /// Number of pages allocated.
    pub allocations: u64,
}

/// Page-granular storage.
pub trait DiskManager {
    /// Allocates a fresh, zeroed/formatted page and returns its id.
    fn allocate_page(&mut self) -> PageId;
    /// Reads page `id` into `buf` (exactly [`PAGE_SIZE`] bytes).
    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> Result<()>;
    /// Writes `buf` back to page `id`.
    fn write_page(&mut self, id: PageId, buf: &[u8]) -> Result<()>;
    /// Number of allocated pages.
    fn page_count(&self) -> u32;
    /// I/O counters so far.
    fn stats(&self) -> DiskStats;
    /// Resets the I/O counters (e.g. between the load phase and a measured
    /// scan) without touching stored data.
    fn reset_stats(&mut self);
}

/// An in-memory disk: a dense vector of page images.
#[derive(Default)]
pub struct InMemoryDisk {
    pages: Vec<Box<[u8]>>,
    stats: DiskStats,
}

impl InMemoryDisk {
    /// Creates an empty disk.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DiskManager for InMemoryDisk {
    fn allocate_page(&mut self) -> PageId {
        let id = self.pages.len() as PageId;
        let mut image = vec![0u8; PAGE_SIZE].into_boxed_slice();
        crate::page::format_page(&mut image);
        self.pages.push(image);
        self.stats.allocations += 1;
        id
    }

    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        let image = self
            .pages
            .get(id as usize)
            .ok_or(StorageError::PageNotFound(id))?;
        buf.copy_from_slice(image);
        self.stats.reads += 1;
        Ok(())
    }

    fn write_page(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        let image = self
            .pages
            .get_mut(id as usize)
            .ok_or(StorageError::PageNotFound(id))?;
        image.copy_from_slice(buf);
        self.stats.writes += 1;
        Ok(())
    }

    fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    fn stats(&self) -> DiskStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = DiskStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_returns_dense_ids() {
        let mut d = InMemoryDisk::new();
        assert_eq!(d.allocate_page(), 0);
        assert_eq!(d.allocate_page(), 1);
        assert_eq!(d.allocate_page(), 2);
        assert_eq!(d.page_count(), 3);
        assert_eq!(d.stats().allocations, 3);
    }

    #[test]
    fn fresh_pages_are_formatted() {
        let mut d = InMemoryDisk::new();
        let id = d.allocate_page();
        let mut buf = vec![0u8; PAGE_SIZE];
        d.read_page(id, &mut buf).unwrap();
        assert_eq!(crate::page::slot_count(&buf), 0);
        assert_eq!(crate::page::free_space(&buf), PAGE_SIZE - 4);
    }

    #[test]
    fn write_then_read_round_trips_and_counts() {
        let mut d = InMemoryDisk::new();
        let id = d.allocate_page();
        let mut buf = vec![0u8; PAGE_SIZE];
        d.read_page(id, &mut buf).unwrap();
        crate::page::insert(&mut buf, b"payload").unwrap();
        d.write_page(id, &buf).unwrap();
        let mut buf2 = vec![0u8; PAGE_SIZE];
        d.read_page(id, &mut buf2).unwrap();
        assert_eq!(crate::page::get(&buf2, 0), Some(&b"payload"[..]));
        assert_eq!(d.stats().reads, 2);
        assert_eq!(d.stats().writes, 1);
    }

    #[test]
    fn unknown_page_errors() {
        let mut d = InMemoryDisk::new();
        let mut buf = vec![0u8; PAGE_SIZE];
        assert_eq!(d.read_page(9, &mut buf), Err(StorageError::PageNotFound(9)));
        assert_eq!(d.write_page(9, &buf), Err(StorageError::PageNotFound(9)));
    }

    #[test]
    fn reset_stats_keeps_data() {
        let mut d = InMemoryDisk::new();
        let id = d.allocate_page();
        let mut buf = vec![0u8; PAGE_SIZE];
        d.read_page(id, &mut buf).unwrap();
        d.reset_stats();
        assert_eq!(d.stats(), DiskStats::default());
        assert_eq!(d.page_count(), 1);
        d.read_page(id, &mut buf).unwrap();
        assert_eq!(d.stats().reads, 1);
    }
}
