//! The buffer-pool manager.
//!
//! All page access in the engine goes through [`BufferPool`]: a fixed number
//! of frames (the paper's `B`), a page table, a [`ReplacementPolicy`], and
//! hit/miss accounting. A *miss* triggers a physical read on the
//! [`DiskManager`] — the paper's "page fetch" — and possibly an eviction
//! (with write-back if dirty).
//!
//! Access is closure-scoped ([`BufferPool::with_page`] /
//! [`BufferPool::with_page_mut`]) rather than guard-based: the page is pinned
//! for the duration of the closure and unpinned on return, which keeps the
//! single-threaded engine simple while still exercising real pin/unpin
//! bookkeeping (evictions skip pinned frames).

use crate::disk::DiskManager;
use crate::page::{PageId, PAGE_SIZE};
use crate::replacement::{ClockPolicy, FifoPolicy, LruPolicy, ReplacementPolicy};
use crate::{Result, StorageError};
use std::collections::HashMap;

/// Which replacement policy a pool should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Least recently used — the paper's assumption.
    Lru,
    /// First in, first out.
    Fifo,
    /// Clock / second chance.
    Clock,
}

/// Pool construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Number of frames (the paper's buffer size `B`, in pages).
    pub frames: usize,
    /// Replacement policy.
    pub policy: PolicyKind,
}

impl PoolConfig {
    /// An LRU pool of `frames` pages.
    pub fn lru(frames: usize) -> Self {
        PoolConfig {
            frames,
            policy: PolicyKind::Lru,
        }
    }
}

/// Buffer access counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Total page requests (logical accesses, the paper's `A`-side events).
    pub requests: u64,
    /// Requests satisfied from the pool.
    pub hits: u64,
    /// Requests that required a physical read (the paper's fetches `F`).
    pub misses: u64,
    /// Pages written back on eviction.
    pub evictions_dirty: u64,
    /// Clean evictions.
    pub evictions_clean: u64,
}

impl PoolStats {
    /// Hit ratio over all requests; 0 when no requests were made.
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

struct Frame {
    page_id: PageId,
    data: Box<[u8]>,
    dirty: bool,
    pin_count: u32,
    occupied: bool,
}

impl Frame {
    fn empty() -> Self {
        Frame {
            page_id: 0,
            data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
            dirty: false,
            pin_count: 0,
            occupied: false,
        }
    }
}

/// A fixed-size page cache in front of a [`DiskManager`].
///
/// ```
/// use epfis_storage::{BufferPool, DiskManager, InMemoryDisk, PoolConfig};
///
/// let mut disk = InMemoryDisk::new();
/// for _ in 0..3 {
///     disk.allocate_page();
/// }
/// let mut pool = BufferPool::new(disk, PoolConfig::lru(2));
/// for pid in [0u32, 1, 0, 2, 0, 1] {
///     pool.with_page(pid, |_bytes| ()).unwrap();
/// }
/// // Classic LRU reference counts for this trace with 2 frames:
/// assert_eq!(pool.stats().misses, 4);
/// assert_eq!(pool.stats().hits, 2);
/// ```
pub struct BufferPool<D: DiskManager> {
    disk: D,
    frames: Vec<Frame>,
    page_table: HashMap<PageId, usize>,
    free_list: Vec<usize>,
    policy: Box<dyn ReplacementPolicy + Send>,
    stats: PoolStats,
}

impl<D: DiskManager> BufferPool<D> {
    /// Creates a pool over `disk` with the given configuration.
    ///
    /// # Panics
    /// Panics if `config.frames == 0`: a zero-page buffer pool cannot hold
    /// even the page currently being accessed.
    pub fn new(disk: D, config: PoolConfig) -> Self {
        assert!(config.frames > 0, "buffer pool needs at least one frame");
        let policy: Box<dyn ReplacementPolicy + Send> = match config.policy {
            PolicyKind::Lru => Box::new(LruPolicy::new(config.frames)),
            PolicyKind::Fifo => Box::new(FifoPolicy::new(config.frames)),
            PolicyKind::Clock => Box::new(ClockPolicy::new(config.frames)),
        };
        BufferPool {
            disk,
            frames: (0..config.frames).map(|_| Frame::empty()).collect(),
            page_table: HashMap::with_capacity(config.frames * 2),
            free_list: (0..config.frames).rev().collect(),
            policy,
            stats: PoolStats::default(),
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Access counters so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Resets access counters (e.g. after a load phase).
    pub fn reset_stats(&mut self) {
        self.stats = PoolStats::default();
        self.disk.reset_stats();
    }

    /// The underlying disk (for its stats or page count).
    pub fn disk(&self) -> &D {
        &self.disk
    }

    /// Allocates a fresh page on disk and returns its id. The page is not
    /// brought into the pool until first access.
    pub fn allocate_page(&mut self) -> PageId {
        self.disk.allocate_page()
    }

    /// Set of page ids currently resident (diagnostics / inclusion tests).
    pub fn resident_pages(&self) -> Vec<PageId> {
        let mut v: Vec<PageId> = self.page_table.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Runs `f` over an immutable view of page `id`, faulting it in if
    /// needed. The page is pinned for the duration of `f`.
    pub fn with_page<R>(&mut self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let frame = self.pin(id)?;
        let out = f(&self.frames[frame].data);
        self.unpin(frame, false);
        Ok(out)
    }

    /// Runs `f` over a mutable view of page `id`, marking it dirty.
    pub fn with_page_mut<R>(&mut self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let frame = self.pin(id)?;
        let out = f(&mut self.frames[frame].data);
        self.unpin(frame, true);
        Ok(out)
    }

    /// Writes every dirty frame back to disk (does not evict).
    pub fn flush_all(&mut self) -> Result<()> {
        for i in 0..self.frames.len() {
            if self.frames[i].occupied && self.frames[i].dirty {
                let pid = self.frames[i].page_id;
                self.disk.write_page(pid, &self.frames[i].data)?;
                self.frames[i].dirty = false;
            }
        }
        Ok(())
    }

    /// Tears the pool down, flushing dirty pages, and returns the disk.
    pub fn into_disk(mut self) -> Result<D> {
        self.flush_all()?;
        Ok(self.disk)
    }

    fn pin(&mut self, id: PageId) -> Result<usize> {
        self.stats.requests += 1;
        if let Some(&frame) = self.page_table.get(&id) {
            self.stats.hits += 1;
            // Process-wide telemetry (per-pool numbers stay in PoolStats).
            // Published only where accounting is final, because the global
            // counters are monotonic and cannot follow the error rollbacks
            // below.
            let obs = epfis_obs::wellknown::bufferpool();
            obs.requests.inc();
            obs.hits.inc();
            self.frames[frame].pin_count += 1;
            self.policy.on_access(frame);
            return Ok(frame);
        }
        self.stats.misses += 1;
        let frame = match self.acquire_frame() {
            Ok(frame) => frame,
            Err(e) => {
                // Nothing was installed; undo the miss accounting.
                self.stats.misses -= 1;
                self.stats.requests -= 1;
                return Err(e);
            }
        };
        // Read before installing in the table so a failed read leaves the
        // pool consistent.
        let res = {
            let f = &mut self.frames[frame];
            self.disk.read_page(id, &mut f.data)
        };
        if let Err(e) = res {
            self.free_list.push(frame);
            self.stats.misses -= 1;
            self.stats.requests -= 1;
            return Err(e);
        }
        let f = &mut self.frames[frame];
        f.page_id = id;
        f.dirty = false;
        f.pin_count = 1;
        f.occupied = true;
        self.page_table.insert(id, frame);
        self.policy.on_insert(frame);
        let obs = epfis_obs::wellknown::bufferpool();
        obs.requests.inc();
        obs.misses.inc();
        Ok(frame)
    }

    fn unpin(&mut self, frame: usize, dirty: bool) {
        let f = &mut self.frames[frame];
        debug_assert!(f.pin_count > 0, "unpin without pin");
        f.pin_count -= 1;
        if dirty {
            f.dirty = true;
        }
    }

    fn acquire_frame(&mut self) -> Result<usize> {
        if let Some(frame) = self.free_list.pop() {
            return Ok(frame);
        }
        let frames = &self.frames;
        let victim = self
            .policy
            .evict(&mut |f| frames[f].pin_count == 0)
            .ok_or(StorageError::PoolExhausted)?;
        let v = &mut self.frames[victim];
        debug_assert!(v.occupied);
        if v.dirty {
            if let Err(e) = self.disk.write_page(v.page_id, &v.data) {
                // Write-back failed: the victim stays resident and dirty;
                // put it back under the policy's control so a later access
                // or eviction can still find it.
                self.policy.on_insert(victim);
                return Err(e);
            }
            self.stats.evictions_dirty += 1;
            epfis_obs::wellknown::bufferpool().evictions_dirty.inc();
        } else {
            self.stats.evictions_clean += 1;
            epfis_obs::wellknown::bufferpool().evictions_clean.inc();
        }
        self.page_table.remove(&v.page_id);
        v.occupied = false;
        v.dirty = false;
        Ok(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;
    use crate::page;

    fn pool_with_pages(frames: usize, pages: u32, policy: PolicyKind) -> BufferPool<InMemoryDisk> {
        let mut disk = InMemoryDisk::new();
        for _ in 0..pages {
            disk.allocate_page();
        }
        disk.reset_stats();
        BufferPool::new(disk, PoolConfig { frames, policy })
    }

    #[test]
    fn hit_after_first_access() {
        let mut pool = pool_with_pages(2, 1, PolicyKind::Lru);
        pool.with_page(0, |_| ()).unwrap();
        pool.with_page(0, |_| ()).unwrap();
        let s = pool.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(pool.disk().stats().reads, 1);
    }

    #[test]
    fn lru_eviction_pattern_matches_reference() {
        // Classic trace: with B=2 and trace 0,1,0,2,0,1 under LRU the misses
        // are 0,1,2,1 -> 4 misses, 2 hits.
        let mut pool = pool_with_pages(2, 3, PolicyKind::Lru);
        for pid in [0u32, 1, 0, 2, 0, 1] {
            pool.with_page(pid, |_| ()).unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn writes_survive_eviction() {
        let mut pool = pool_with_pages(1, 2, PolicyKind::Lru);
        pool.with_page_mut(0, |b| {
            page::insert(b, b"persisted").unwrap();
        })
        .unwrap();
        // Evict page 0 by touching page 1.
        pool.with_page(1, |_| ()).unwrap();
        assert_eq!(pool.stats().evictions_dirty, 1);
        // Fault 0 back in and observe the write.
        let got = pool
            .with_page(0, |b| page::get(b, 0).map(|x| x.to_vec()))
            .unwrap();
        assert_eq!(got.as_deref(), Some(&b"persisted"[..]));
    }

    #[test]
    fn clean_evictions_do_not_write() {
        let mut pool = pool_with_pages(1, 3, PolicyKind::Lru);
        for pid in [0u32, 1, 2] {
            pool.with_page(pid, |_| ()).unwrap();
        }
        assert_eq!(pool.stats().evictions_clean, 2);
        assert_eq!(pool.disk().stats().writes, 0);
    }

    #[test]
    fn missing_page_error_leaves_pool_consistent() {
        let mut pool = pool_with_pages(2, 1, PolicyKind::Lru);
        assert!(pool.with_page(42, |_| ()).is_err());
        // Counters rolled back; the pool still works.
        assert_eq!(pool.stats().requests, 0);
        pool.with_page(0, |_| ()).unwrap();
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn into_disk_flushes_dirty_pages() {
        let mut pool = pool_with_pages(2, 1, PolicyKind::Lru);
        pool.with_page_mut(0, |b| {
            page::insert(b, b"flushed").unwrap();
        })
        .unwrap();
        let mut disk = pool.into_disk().unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        disk.read_page(0, &mut buf).unwrap();
        assert_eq!(page::get(&buf, 0), Some(&b"flushed"[..]));
    }

    #[test]
    fn sequential_scan_fetches_each_page_once_regardless_of_pool_size() {
        // Section 2: "For a table scan, the number of page fetches is exactly
        // T ... independent of the buffer pool size."
        for frames in [1usize, 3, 10] {
            let mut pool = pool_with_pages(frames, 10, PolicyKind::Lru);
            for pid in 0..10u32 {
                pool.with_page(pid, |_| ()).unwrap();
            }
            assert_eq!(pool.stats().misses, 10, "frames={frames}");
        }
    }

    #[test]
    fn resident_set_never_exceeds_capacity() {
        let mut pool = pool_with_pages(3, 8, PolicyKind::Clock);
        for pid in (0..8u32).chain(0..8).chain((0..8).rev()) {
            pool.with_page(pid, |_| ()).unwrap();
            assert!(pool.resident_pages().len() <= 3);
        }
    }

    #[test]
    fn fifo_and_lru_differ_on_looping_trace() {
        // Trace 0,1,0,2,0,3,...: LRU keeps page 0 resident, FIFO evicts it.
        let trace: Vec<u32> = (1..20u32).flat_map(|p| [0, p]).collect();
        let run = |policy| {
            let mut pool = pool_with_pages(2, 20, policy);
            for &pid in &trace {
                pool.with_page(pid, |_| ()).unwrap();
            }
            pool.stats().misses
        };
        let lru = run(PolicyKind::Lru);
        let fifo = run(PolicyKind::Fifo);
        assert!(lru < fifo, "lru={lru} fifo={fifo}");
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frame_pool_panics() {
        let _ = pool_with_pages(0, 1, PolicyKind::Lru);
    }
}
