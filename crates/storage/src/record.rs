//! A miniature typed row codec.
//!
//! Tables in the reproduction carry real (if simple) rows rather than opaque
//! blobs: a [`Schema`] is an ordered list of [`ColumnType`]s and a [`Record`]
//! is a matching list of [`Value`]s. Encoding is positional:
//!
//! * `Int` — 8 bytes, little-endian two's complement,
//! * `Str` — `u16` length prefix followed by UTF-8 bytes.
//!
//! The codec is intentionally free of self-description: like most row
//! formats, it is only decodable against its schema, which lives in the
//! catalog, not in every record.

use crate::{Result, StorageError};

/// The type of one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// Variable-length UTF-8 string (at most `u16::MAX` bytes).
    Str,
}

/// One column value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Value {
    /// An integer value.
    Int(i64),
    /// A string value.
    Str(String),
}

impl Value {
    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Int(_) => None,
        }
    }

    fn column_type(&self) -> ColumnType {
        match self {
            Value::Int(_) => ColumnType::Int,
            Value::Str(_) => ColumnType::Str,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

/// An ordered list of column types with names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<(String, ColumnType)>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    pub fn new(columns: Vec<(impl Into<String>, ColumnType)>) -> Self {
        Schema {
            columns: columns.into_iter().map(|(n, t)| (n.into(), t)).collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column type at `idx`.
    pub fn column_type(&self, idx: usize) -> ColumnType {
        self.columns[idx].1
    }

    /// Column name at `idx`.
    pub fn column_name(&self, idx: usize) -> &str {
        &self.columns[idx].0
    }

    /// Position of the column named `name`, if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }

    /// Checks that `record` matches this schema.
    pub fn validate(&self, record: &Record) -> Result<()> {
        if record.values.len() != self.arity() {
            return Err(StorageError::CorruptRecord(format!(
                "arity mismatch: schema has {}, record has {}",
                self.arity(),
                record.values.len()
            )));
        }
        for (i, v) in record.values.iter().enumerate() {
            if v.column_type() != self.column_type(i) {
                return Err(StorageError::CorruptRecord(format!(
                    "column {i} type mismatch"
                )));
            }
        }
        Ok(())
    }
}

/// One row: an ordered list of values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The column values, in schema order.
    pub values: Vec<Value>,
}

impl Record {
    /// Builds a record from values.
    pub fn new(values: Vec<Value>) -> Self {
        Record { values }
    }

    /// Encodes against `schema` into a fresh byte vector.
    pub fn encode(&self, schema: &Schema) -> Result<Vec<u8>> {
        schema.validate(self)?;
        let mut out = Vec::with_capacity(self.values.len() * 8);
        for v in &self.values {
            match v {
                Value::Int(x) => out.extend_from_slice(&x.to_le_bytes()),
                Value::Str(s) => {
                    let bytes = s.as_bytes();
                    if bytes.len() > u16::MAX as usize {
                        return Err(StorageError::CorruptRecord(
                            "string column exceeds u16::MAX bytes".into(),
                        ));
                    }
                    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
                    out.extend_from_slice(bytes);
                }
            }
        }
        Ok(out)
    }

    /// Decodes a byte payload against `schema`.
    pub fn decode(schema: &Schema, mut bytes: &[u8]) -> Result<Record> {
        let mut values = Vec::with_capacity(schema.arity());
        for i in 0..schema.arity() {
            match schema.column_type(i) {
                ColumnType::Int => {
                    if bytes.len() < 8 {
                        return Err(StorageError::CorruptRecord(format!(
                            "truncated int column {i}"
                        )));
                    }
                    let (head, rest) = bytes.split_at(8);
                    values.push(Value::Int(i64::from_le_bytes(head.try_into().unwrap())));
                    bytes = rest;
                }
                ColumnType::Str => {
                    if bytes.len() < 2 {
                        return Err(StorageError::CorruptRecord(format!(
                            "truncated string length, column {i}"
                        )));
                    }
                    let (head, rest) = bytes.split_at(2);
                    let len = u16::from_le_bytes(head.try_into().unwrap()) as usize;
                    if rest.len() < len {
                        return Err(StorageError::CorruptRecord(format!(
                            "truncated string column {i}"
                        )));
                    }
                    let (s, rest) = rest.split_at(len);
                    let s = std::str::from_utf8(s)
                        .map_err(|e| StorageError::CorruptRecord(format!("bad utf8: {e}")))?;
                    values.push(Value::Str(s.to_owned()));
                    bytes = rest;
                }
            }
        }
        if !bytes.is_empty() {
            return Err(StorageError::CorruptRecord(format!(
                "{} trailing bytes after decode",
                bytes.len()
            )));
        }
        Ok(Record::new(values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ("id", ColumnType::Int),
            ("name", ColumnType::Str),
            ("amount", ColumnType::Int),
        ])
    }

    #[test]
    fn encode_decode_round_trips() {
        let s = schema();
        let r = Record::new(vec![Value::Int(42), "alice".into(), Value::Int(-7)]);
        let bytes = r.encode(&s).unwrap();
        let back = Record::decode(&s, &bytes).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn int_encoding_is_8_bytes_le() {
        let s = Schema::new(vec![("x", ColumnType::Int)]);
        let bytes = Record::new(vec![Value::Int(0x0102030405060708)])
            .encode(&s)
            .unwrap();
        assert_eq!(bytes, vec![8, 7, 6, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn empty_string_round_trips() {
        let s = Schema::new(vec![("x", ColumnType::Str)]);
        let r = Record::new(vec!["".into()]);
        let bytes = r.encode(&s).unwrap();
        assert_eq!(bytes.len(), 2);
        assert_eq!(Record::decode(&s, &bytes).unwrap(), r);
    }

    #[test]
    fn arity_mismatch_rejected_on_encode() {
        let s = schema();
        let r = Record::new(vec![Value::Int(1)]);
        assert!(r.encode(&s).is_err());
    }

    #[test]
    fn type_mismatch_rejected_on_encode() {
        let s = Schema::new(vec![("x", ColumnType::Int)]);
        let r = Record::new(vec!["not an int".into()]);
        assert!(r.encode(&s).is_err());
    }

    #[test]
    fn truncated_bytes_rejected_on_decode() {
        let s = Schema::new(vec![("x", ColumnType::Int)]);
        assert!(Record::decode(&s, &[1, 2, 3]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected_on_decode() {
        let s = Schema::new(vec![("x", ColumnType::Int)]);
        let mut bytes = Record::new(vec![Value::Int(5)]).encode(&s).unwrap();
        bytes.push(0xFF);
        assert!(Record::decode(&s, &bytes).is_err());
    }

    #[test]
    fn bad_utf8_rejected() {
        let s = Schema::new(vec![("x", ColumnType::Str)]);
        let bytes = vec![2, 0, 0xFF, 0xFE];
        assert!(Record::decode(&s, &bytes).is_err());
    }

    #[test]
    fn column_lookup_by_name() {
        let s = schema();
        assert_eq!(s.column_index("name"), Some(1));
        assert_eq!(s.column_index("missing"), None);
        assert_eq!(s.column_name(2), "amount");
    }

    #[test]
    fn negative_and_extreme_ints_round_trip() {
        let s = Schema::new(vec![("x", ColumnType::Int)]);
        for v in [i64::MIN, -1, 0, 1, i64::MAX] {
            let r = Record::new(vec![Value::Int(v)]);
            let bytes = r.encode(&s).unwrap();
            assert_eq!(Record::decode(&s, &bytes).unwrap(), r);
        }
    }
}
