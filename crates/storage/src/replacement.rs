//! Buffer replacement policies.
//!
//! The paper assumes the buffer pool is managed with LRU ("as in most
//! relational database systems"), so [`LruPolicy`] is the policy of record:
//! its miss counts must agree exactly with the `epfis-lrusim` stack
//! simulation, and an integration test holds it to that. [`FifoPolicy`] and
//! [`ClockPolicy`] exist for ablations — EPFIS's stored FPF curve is an *LRU*
//! model, and running the same scans under a different policy shows how much
//! the LRU assumption is worth.
//!
//! Policies operate on frame indices (`usize` slots in the pool's frame
//! table), not page ids; the pool owns the page table.

/// A victim-selection policy over buffer frames.
pub trait ReplacementPolicy {
    /// Called when a page is installed into frame `frame`.
    fn on_insert(&mut self, frame: usize);
    /// Called on every access (hit) to frame `frame`.
    fn on_access(&mut self, frame: usize);
    /// Called when frame `frame` is emptied outside of `evict` (e.g. pool
    /// teardown or explicit invalidation).
    fn on_remove(&mut self, frame: usize);
    /// Picks a victim among tracked frames for which `evictable` returns
    /// true, removes it from the policy's bookkeeping, and returns it.
    fn evict(&mut self, evictable: &mut dyn FnMut(usize) -> bool) -> Option<usize>;
    /// Human-readable policy name (for reports).
    fn name(&self) -> &'static str;
}

const NIL: usize = usize::MAX;

/// Least-recently-used via an intrusive doubly-linked list over frame slots.
///
/// All operations are O(1); `evict` is O(pinned prefix), which is O(1) when
/// nothing is pinned (the common case in this single-threaded engine).
pub struct LruPolicy {
    prev: Vec<usize>,
    next: Vec<usize>,
    /// Least recently used end (eviction side).
    head: usize,
    /// Most recently used end.
    tail: usize,
    tracked: Vec<bool>,
}

impl LruPolicy {
    /// Creates a policy for a pool with `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        LruPolicy {
            prev: vec![NIL; capacity],
            next: vec![NIL; capacity],
            head: NIL,
            tail: NIL,
            tracked: vec![false; capacity],
        }
    }

    fn unlink(&mut self, frame: usize) {
        let (p, n) = (self.prev[frame], self.next[frame]);
        if p != NIL {
            self.next[p] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n] = p;
        } else {
            self.tail = p;
        }
        self.prev[frame] = NIL;
        self.next[frame] = NIL;
    }

    fn push_mru(&mut self, frame: usize) {
        self.prev[frame] = self.tail;
        self.next[frame] = NIL;
        if self.tail != NIL {
            self.next[self.tail] = frame;
        } else {
            self.head = frame;
        }
        self.tail = frame;
    }

    /// Frames from LRU to MRU (test/diagnostic helper).
    pub fn order(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = self.head;
        while cur != NIL {
            out.push(cur);
            cur = self.next[cur];
        }
        out
    }
}

impl ReplacementPolicy for LruPolicy {
    fn on_insert(&mut self, frame: usize) {
        debug_assert!(!self.tracked[frame], "frame inserted twice");
        self.tracked[frame] = true;
        self.push_mru(frame);
    }

    fn on_access(&mut self, frame: usize) {
        debug_assert!(self.tracked[frame], "access to untracked frame");
        self.unlink(frame);
        self.push_mru(frame);
    }

    fn on_remove(&mut self, frame: usize) {
        if self.tracked[frame] {
            self.tracked[frame] = false;
            self.unlink(frame);
        }
    }

    fn evict(&mut self, evictable: &mut dyn FnMut(usize) -> bool) -> Option<usize> {
        let mut cur = self.head;
        while cur != NIL {
            if evictable(cur) {
                self.tracked[cur] = false;
                self.unlink(cur);
                return Some(cur);
            }
            cur = self.next[cur];
        }
        None
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

/// First-in-first-out: eviction order is installation order, accesses are
/// ignored.
pub struct FifoPolicy {
    lru: LruPolicy,
}

impl FifoPolicy {
    /// Creates a policy for a pool with `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        FifoPolicy {
            lru: LruPolicy::new(capacity),
        }
    }
}

impl ReplacementPolicy for FifoPolicy {
    fn on_insert(&mut self, frame: usize) {
        self.lru.on_insert(frame);
    }

    fn on_access(&mut self, _frame: usize) {
        // FIFO ignores accesses: position is fixed at insertion.
    }

    fn on_remove(&mut self, frame: usize) {
        self.lru.on_remove(frame);
    }

    fn evict(&mut self, evictable: &mut dyn FnMut(usize) -> bool) -> Option<usize> {
        self.lru.evict(evictable)
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// The Clock (second-chance) approximation of LRU.
pub struct ClockPolicy {
    referenced: Vec<bool>,
    present: Vec<bool>,
    hand: usize,
    capacity: usize,
}

impl ClockPolicy {
    /// Creates a policy for a pool with `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        ClockPolicy {
            referenced: vec![false; capacity],
            present: vec![false; capacity],
            hand: 0,
            capacity,
        }
    }
}

impl ReplacementPolicy for ClockPolicy {
    fn on_insert(&mut self, frame: usize) {
        self.present[frame] = true;
        self.referenced[frame] = true;
    }

    fn on_access(&mut self, frame: usize) {
        self.referenced[frame] = true;
    }

    fn on_remove(&mut self, frame: usize) {
        self.present[frame] = false;
        self.referenced[frame] = false;
    }

    fn evict(&mut self, evictable: &mut dyn FnMut(usize) -> bool) -> Option<usize> {
        if self.capacity == 0 {
            return None;
        }
        // Two full sweeps suffice: the first clears reference bits, the
        // second must find a victim unless everything is pinned.
        for _ in 0..2 * self.capacity {
            let f = self.hand;
            self.hand = (self.hand + 1) % self.capacity;
            if !self.present[f] || !evictable(f) {
                continue;
            }
            if self.referenced[f] {
                self.referenced[f] = false;
            } else {
                self.present[f] = false;
                return Some(f);
            }
        }
        // Everything referenced and pinned-free was given a second chance;
        // take the first evictable frame.
        for _ in 0..self.capacity {
            let f = self.hand;
            self.hand = (self.hand + 1) % self.capacity;
            if self.present[f] && evictable(f) {
                self.present[f] = false;
                self.referenced[f] = false;
                return Some(f);
            }
        }
        None
    }

    fn name(&self) -> &'static str {
        "clock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evict_any(p: &mut dyn ReplacementPolicy) -> Option<usize> {
        p.evict(&mut |_| true)
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut p = LruPolicy::new(4);
        p.on_insert(0);
        p.on_insert(1);
        p.on_insert(2);
        p.on_access(0); // order now 1,2,0
        assert_eq!(evict_any(&mut p), Some(1));
        assert_eq!(evict_any(&mut p), Some(2));
        assert_eq!(evict_any(&mut p), Some(0));
        assert_eq!(evict_any(&mut p), None);
    }

    #[test]
    fn lru_skips_unevictable_frames() {
        let mut p = LruPolicy::new(3);
        p.on_insert(0);
        p.on_insert(1);
        let v = p.evict(&mut |f| f != 0);
        assert_eq!(v, Some(1));
        // Frame 0 is still tracked.
        assert_eq!(evict_any(&mut p), Some(0));
    }

    #[test]
    fn lru_remove_unlinks() {
        let mut p = LruPolicy::new(3);
        p.on_insert(0);
        p.on_insert(1);
        p.on_insert(2);
        p.on_remove(1);
        assert_eq!(p.order(), vec![0, 2]);
        assert_eq!(evict_any(&mut p), Some(0));
        assert_eq!(evict_any(&mut p), Some(2));
        assert_eq!(evict_any(&mut p), None);
    }

    #[test]
    fn lru_access_moves_to_mru() {
        let mut p = LruPolicy::new(3);
        p.on_insert(0);
        p.on_insert(1);
        p.on_insert(2);
        p.on_access(1);
        p.on_access(0);
        assert_eq!(p.order(), vec![2, 1, 0]);
    }

    #[test]
    fn fifo_ignores_accesses() {
        let mut p = FifoPolicy::new(3);
        p.on_insert(0);
        p.on_insert(1);
        p.on_insert(2);
        p.on_access(0);
        p.on_access(0);
        assert_eq!(evict_any(&mut p), Some(0));
        assert_eq!(evict_any(&mut p), Some(1));
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut p = ClockPolicy::new(3);
        p.on_insert(0);
        p.on_insert(1);
        p.on_insert(2);
        // All referenced; first sweep clears bits, victim is frame 0.
        assert_eq!(evict_any(&mut p), Some(0));
        // Re-referencing 1 protects it over 2.
        p.on_access(1);
        assert_eq!(evict_any(&mut p), Some(2));
        assert_eq!(evict_any(&mut p), Some(1));
        assert_eq!(evict_any(&mut p), None);
    }

    #[test]
    fn clock_respects_unevictable() {
        let mut p = ClockPolicy::new(2);
        p.on_insert(0);
        p.on_insert(1);
        assert_eq!(p.evict(&mut |f| f == 1), Some(1));
    }

    #[test]
    fn empty_policies_return_none() {
        assert_eq!(evict_any(&mut LruPolicy::new(4)), None);
        assert_eq!(evict_any(&mut FifoPolicy::new(4)), None);
        assert_eq!(evict_any(&mut ClockPolicy::new(4)), None);
        assert_eq!(evict_any(&mut ClockPolicy::new(0)), None);
    }
}
