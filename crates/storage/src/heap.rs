//! Heap files: unordered record storage over the buffer pool.
//!
//! A heap file owns a contiguous range of page ids `[first, first+count)` on
//! the shared disk. Inserts append to the current last page until it is full
//! (the classic fill order the paper's synthetic generator perturbs with its
//! clustering window); the loader used by the experiments instead places each
//! record on an *explicit* page via [`HeapFile::insert_at`], because the
//! placement — and therefore the clustering — is exactly what is under study.

use crate::bufferpool::BufferPool;
use crate::disk::DiskManager;
use crate::page::{self, PageId, RecordId, SlotId};
use crate::record::{Record, Schema};
use crate::{Result, StorageError};

/// An unordered collection of records occupying a dense page range.
pub struct HeapFile {
    schema: Schema,
    first_page: PageId,
    page_count: u32,
}

impl HeapFile {
    /// Creates an empty heap file with one allocated page.
    pub fn create<D: DiskManager>(pool: &mut BufferPool<D>, schema: Schema) -> Self {
        let first_page = pool.allocate_page();
        HeapFile {
            schema,
            first_page,
            page_count: 1,
        }
    }

    /// Creates a heap file pre-allocating exactly `pages` pages.
    ///
    /// Used by the experiment loaders, which decide record placement
    /// themselves and need the full page range up front.
    pub fn create_with_pages<D: DiskManager>(
        pool: &mut BufferPool<D>,
        schema: Schema,
        pages: u32,
    ) -> Self {
        assert!(pages > 0, "a heap file needs at least one page");
        let first_page = pool.allocate_page();
        for _ in 1..pages {
            pool.allocate_page();
        }
        HeapFile {
            schema,
            first_page,
            page_count: pages,
        }
    }

    /// The file's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of pages (the paper's `T` once loading is done).
    pub fn page_count(&self) -> u32 {
        self.page_count
    }

    /// First page id of the file's range.
    pub fn first_page(&self) -> PageId {
        self.first_page
    }

    /// Converts a file-relative page ordinal (0-based) to a disk page id.
    pub fn page_id(&self, ordinal: u32) -> PageId {
        assert!(ordinal < self.page_count, "page ordinal out of range");
        self.first_page + ordinal
    }

    /// Converts a disk page id back to a file-relative ordinal.
    pub fn page_ordinal(&self, id: PageId) -> Option<u32> {
        if id >= self.first_page && id < self.first_page + self.page_count {
            Some(id - self.first_page)
        } else {
            None
        }
    }

    /// Appends a record, extending the file with a new page if the last page
    /// is full. Returns the record's RID.
    pub fn insert<D: DiskManager>(
        &mut self,
        pool: &mut BufferPool<D>,
        record: &Record,
    ) -> Result<RecordId> {
        let payload = record.encode(&self.schema)?;
        let last = self.first_page + self.page_count - 1;
        let fits = pool.with_page(last, |b| page::fits(b, payload.len()))?;
        let target = if fits {
            last
        } else {
            let p = pool.allocate_page();
            // Heap files own dense ranges; interleaved allocation by another
            // file would violate that.
            assert_eq!(p, last + 1, "heap file page range must stay dense");
            self.page_count += 1;
            p
        };
        let slot = pool.with_page_mut(target, |b| page::insert(b, &payload))??;
        Ok(RecordId::new(target, slot))
    }

    /// Inserts a record on the page with file-relative ordinal
    /// `page_ordinal`, failing if it does not fit. Used by placement-aware
    /// loaders.
    pub fn insert_at<D: DiskManager>(
        &mut self,
        pool: &mut BufferPool<D>,
        page_ordinal: u32,
        record: &Record,
    ) -> Result<RecordId> {
        let payload = record.encode(&self.schema)?;
        let pid = self.page_id(page_ordinal);
        let slot = pool.with_page_mut(pid, |b| page::insert(b, &payload))??;
        Ok(RecordId::new(pid, slot))
    }

    /// Fetches the record at `rid` through the pool.
    pub fn get<D: DiskManager>(&self, pool: &mut BufferPool<D>, rid: RecordId) -> Result<Record> {
        if self.page_ordinal(rid.page).is_none() {
            return Err(StorageError::SlotNotFound(rid));
        }
        let schema = self.schema.clone();
        pool.with_page(rid.page, |b| match page::get(b, rid.slot) {
            Some(payload) => Record::decode(&schema, payload),
            None => Err(StorageError::SlotNotFound(rid)),
        })?
    }

    /// Deletes the record at `rid`.
    pub fn delete<D: DiskManager>(&self, pool: &mut BufferPool<D>, rid: RecordId) -> Result<()> {
        if self.page_ordinal(rid.page).is_none() {
            return Err(StorageError::SlotNotFound(rid));
        }
        pool.with_page_mut(rid.page, |b| page::delete(b, rid.slot))?
    }

    /// Full scan in physical order. This is the paper's "table scan" access
    /// plan: exactly `page_count` fetches, independent of buffer size.
    pub fn scan(&self) -> HeapScan<'_> {
        HeapScan {
            heap: self,
            next_page: 0,
            pending: Vec::new(),
        }
    }

    /// Counts live records (scans every page).
    pub fn record_count<D: DiskManager>(&self, pool: &mut BufferPool<D>) -> Result<u64> {
        let mut n = 0u64;
        for ord in 0..self.page_count {
            let pid = self.page_id(ord);
            n += pool.with_page(pid, |b| {
                (0..page::slot_count(b))
                    .filter(|&s| page::slot(b, s).is_some())
                    .count() as u64
            })?;
        }
        Ok(n)
    }
}

/// Cursor over a heap file in physical page order.
///
/// The cursor buffers one page's worth of `(RecordId, Record)` at a time, so
/// each data page is requested from the pool exactly once per scan.
pub struct HeapScan<'h> {
    heap: &'h HeapFile,
    next_page: u32,
    pending: Vec<(RecordId, Record)>,
}

impl HeapScan<'_> {
    /// Returns the next `(rid, record)`, or `None` at end of file.
    pub fn next<D: DiskManager>(
        &mut self,
        pool: &mut BufferPool<D>,
    ) -> Result<Option<(RecordId, Record)>> {
        loop {
            if let Some(item) = self.pending.pop() {
                return Ok(Some(item));
            }
            if self.next_page >= self.heap.page_count {
                return Ok(None);
            }
            let pid = self.heap.page_id(self.next_page);
            self.next_page += 1;
            let schema = self.heap.schema.clone();
            let mut batch = pool.with_page(pid, |b| {
                let mut out = Vec::new();
                for s in 0..page::slot_count(b) {
                    if let Some(payload) = page::get(b, s) {
                        out.push((
                            RecordId::new(pid, s as SlotId),
                            Record::decode(&schema, payload),
                        ));
                    }
                }
                out
            })?;
            // Push in reverse so pop() yields slot order.
            batch.reverse();
            for (rid, rec) in batch {
                self.pending.push((rid, rec?));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bufferpool::{PolicyKind, PoolConfig};
    use crate::disk::InMemoryDisk;
    use crate::record::{ColumnType, Value};

    fn setup(frames: usize) -> (BufferPool<InMemoryDisk>, HeapFile) {
        let mut pool = BufferPool::new(
            InMemoryDisk::new(),
            PoolConfig {
                frames,
                policy: PolicyKind::Lru,
            },
        );
        let schema = Schema::new(vec![("k", ColumnType::Int), ("payload", ColumnType::Str)]);
        let heap = HeapFile::create(&mut pool, schema);
        (pool, heap)
    }

    fn rec(k: i64) -> Record {
        Record::new(vec![Value::Int(k), Value::Str(format!("row-{k}"))])
    }

    #[test]
    fn insert_get_round_trips() {
        let (mut pool, mut heap) = setup(4);
        let rid = heap.insert(&mut pool, &rec(7)).unwrap();
        let got = heap.get(&mut pool, rid).unwrap();
        assert_eq!(got.values[0], Value::Int(7));
    }

    #[test]
    fn file_grows_across_pages() {
        let (mut pool, mut heap) = setup(4);
        let mut rids = Vec::new();
        for k in 0..2000 {
            rids.push(heap.insert(&mut pool, &rec(k)).unwrap());
        }
        assert!(heap.page_count() > 1, "2000 records should span pages");
        // Every record is retrievable.
        for (k, rid) in rids.iter().enumerate() {
            let got = heap.get(&mut pool, *rid).unwrap();
            assert_eq!(got.values[0], Value::Int(k as i64));
        }
    }

    #[test]
    fn scan_returns_all_records_in_physical_order() {
        let (mut pool, mut heap) = setup(4);
        for k in 0..500 {
            heap.insert(&mut pool, &rec(k)).unwrap();
        }
        let mut scan = heap.scan();
        let mut seen = Vec::new();
        let mut last_rid = None;
        while let Some((rid, r)) = scan.next(&mut pool).unwrap() {
            if let Some(prev) = last_rid {
                assert!(rid > prev, "physical order must be monotone");
            }
            last_rid = Some(rid);
            seen.push(r.values[0].as_int().unwrap());
        }
        // Append-only fill means physical order == insertion order here.
        assert_eq!(seen, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn table_scan_fetches_each_page_once() {
        let (mut pool, mut heap) = setup(2);
        for k in 0..2000 {
            heap.insert(&mut pool, &rec(k)).unwrap();
        }
        pool.reset_stats();
        let mut scan = heap.scan();
        while scan.next(&mut pool).unwrap().is_some() {}
        assert_eq!(pool.stats().misses as u32, heap.page_count());
    }

    #[test]
    fn delete_then_get_fails_and_scan_skips() {
        let (mut pool, mut heap) = setup(4);
        let a = heap.insert(&mut pool, &rec(1)).unwrap();
        let b = heap.insert(&mut pool, &rec(2)).unwrap();
        heap.delete(&mut pool, a).unwrap();
        assert!(heap.get(&mut pool, a).is_err());
        assert!(heap.get(&mut pool, b).is_ok());
        let mut scan = heap.scan();
        let mut ks = Vec::new();
        while let Some((_, r)) = scan.next(&mut pool).unwrap() {
            ks.push(r.values[0].as_int().unwrap());
        }
        assert_eq!(ks, vec![2]);
        assert_eq!(heap.record_count(&mut pool).unwrap(), 1);
    }

    #[test]
    fn insert_at_places_on_requested_page() {
        let mut pool = BufferPool::new(
            InMemoryDisk::new(),
            PoolConfig {
                frames: 4,
                policy: PolicyKind::Lru,
            },
        );
        let schema = Schema::new(vec![("k", ColumnType::Int)]);
        let mut heap = HeapFile::create_with_pages(&mut pool, schema, 5);
        let rid = heap
            .insert_at(&mut pool, 3, &Record::new(vec![Value::Int(9)]))
            .unwrap();
        assert_eq!(heap.page_ordinal(rid.page), Some(3));
        let got = heap.get(&mut pool, rid).unwrap();
        assert_eq!(got.values[0], Value::Int(9));
    }

    #[test]
    fn rid_outside_file_range_is_rejected() {
        let (mut pool, heap) = setup(4);
        assert!(heap.get(&mut pool, RecordId::new(999, 0)).is_err());
        assert!(heap.delete(&mut pool, RecordId::new(999, 0)).is_err());
    }

    #[test]
    fn record_count_on_empty_file_is_zero() {
        let (mut pool, heap) = setup(4);
        assert_eq!(heap.record_count(&mut pool).unwrap(), 0);
    }
}
