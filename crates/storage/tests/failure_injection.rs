//! Failure injection: the buffer pool's error paths under a misbehaving
//! disk. A wrapper `DiskManager` fails reads/writes on command; the pool
//! must surface the error, leave its bookkeeping consistent, and keep
//! working once the fault clears.

use epfis_storage::{
    page, BufferPool, DiskManager, DiskStats, InMemoryDisk, PoolConfig, Result, StorageError,
};
use std::cell::Cell;
use std::rc::Rc;

/// Shared fault switchboard.
#[derive(Clone, Default)]
struct Faults {
    fail_reads: Rc<Cell<bool>>,
    fail_writes: Rc<Cell<bool>>,
}

struct FlakyDisk {
    inner: InMemoryDisk,
    faults: Faults,
}

impl DiskManager for FlakyDisk {
    fn allocate_page(&mut self) -> u32 {
        self.inner.allocate_page()
    }

    fn read_page(&mut self, id: u32, buf: &mut [u8]) -> Result<()> {
        if self.faults.fail_reads.get() {
            return Err(StorageError::PageNotFound(id));
        }
        self.inner.read_page(id, buf)
    }

    fn write_page(&mut self, id: u32, buf: &[u8]) -> Result<()> {
        if self.faults.fail_writes.get() {
            return Err(StorageError::PageNotFound(id));
        }
        self.inner.write_page(id, buf)
    }

    fn page_count(&self) -> u32 {
        self.inner.page_count()
    }

    fn stats(&self) -> DiskStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats()
    }
}

fn flaky_pool(pages: u32, frames: usize) -> (BufferPool<FlakyDisk>, Faults) {
    let mut inner = InMemoryDisk::new();
    for _ in 0..pages {
        inner.allocate_page();
    }
    let faults = Faults::default();
    let disk = FlakyDisk {
        inner,
        faults: faults.clone(),
    };
    (BufferPool::new(disk, PoolConfig::lru(frames)), faults)
}

#[test]
fn read_fault_is_surfaced_and_counters_roll_back() {
    let (mut pool, faults) = flaky_pool(4, 2);
    pool.with_page(0, |_| ()).unwrap();
    faults.fail_reads.set(true);
    let err = pool.with_page(1, |_| ()).unwrap_err();
    assert!(matches!(err, StorageError::PageNotFound(1)));
    // The failed request was rolled back entirely.
    let stats = pool.stats();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.misses, 1);
    // Already-resident pages still hit while reads are down.
    assert!(pool.with_page(0, |_| ()).is_ok());
    // Recovery: the faulted page loads once reads come back.
    faults.fail_reads.set(false);
    assert!(pool.with_page(1, |_| ()).is_ok());
    assert_eq!(pool.stats().misses, 2);
}

#[test]
fn repeated_read_faults_do_not_leak_frames() {
    let (mut pool, faults) = flaky_pool(8, 2);
    faults.fail_reads.set(true);
    for pid in 0..8u32 {
        assert!(pool.with_page(pid, |_| ()).is_err());
    }
    faults.fail_reads.set(false);
    // Both frames must still be usable.
    for pid in 0..8u32 {
        assert!(pool.with_page(pid, |_| ()).is_ok());
    }
    assert_eq!(pool.resident_pages().len(), 2);
}

#[test]
fn dirty_eviction_write_fault_is_surfaced() {
    let (mut pool, faults) = flaky_pool(3, 1);
    pool.with_page_mut(0, |b| {
        page::insert(b, b"dirty").unwrap();
    })
    .unwrap();
    faults.fail_writes.set(true);
    // Faulting in page 1 must evict dirty page 0 -> write-back fails.
    let err = pool.with_page(1, |_| ()).unwrap_err();
    assert!(matches!(err, StorageError::PageNotFound(0)));
    // After the fault clears, the dirty page is still in the pool and its
    // data is intact.
    faults.fail_writes.set(false);
    let got = pool
        .with_page(0, |b| page::get(b, 0).map(|x| x.to_vec()))
        .unwrap();
    assert_eq!(got.as_deref(), Some(&b"dirty"[..]));
    // And eviction now succeeds.
    pool.with_page(2, |_| ()).unwrap();
    let mut disk = pool.into_disk().unwrap();
    let mut buf = vec![0u8; epfis_storage::PAGE_SIZE];
    DiskManager::read_page(&mut disk, 0, &mut buf).unwrap();
    assert_eq!(page::get(&buf, 0), Some(&b"dirty"[..]));
}

#[test]
fn flush_all_propagates_write_faults_without_corrupting_state() {
    let (mut pool, faults) = flaky_pool(2, 2);
    pool.with_page_mut(0, |b| {
        page::insert(b, b"a").unwrap();
    })
    .unwrap();
    faults.fail_writes.set(true);
    assert!(pool.flush_all().is_err());
    faults.fail_writes.set(false);
    pool.flush_all().unwrap();
    let mut disk = pool.into_disk().unwrap();
    let mut buf = vec![0u8; epfis_storage::PAGE_SIZE];
    DiskManager::read_page(&mut disk, 0, &mut buf).unwrap();
    assert_eq!(page::get(&buf, 0), Some(&b"a"[..]));
}
