//! Property tests for the storage engine.

use epfis_storage::{
    page, BufferPool, ColumnType, DiskManager, HeapFile, InMemoryDisk, PageBuf, PoolConfig, Record,
    Schema, Value,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn slotted_page_behaves_like_a_vec_of_payloads(
        ops in prop::collection::vec((any::<bool>(), prop::collection::vec(any::<u8>(), 0..200)), 0..80)
    ) {
        // Model: Vec<Option<payload>> indexed by slot.
        let mut p = PageBuf::new();
        let mut model: Vec<Option<Vec<u8>>> = Vec::new();
        for (delete, payload) in ops {
            if delete {
                // Delete the first live slot, if any.
                if let Some(slot) = model.iter().position(|s| s.is_some()) {
                    p.delete(slot as u16).unwrap();
                    model[slot] = None;
                }
            } else if p.fits(payload.len()) {
                let slot = p.insert(&payload).unwrap();
                prop_assert_eq!(slot as usize, model.len());
                model.push(Some(payload));
            }
        }
        for (slot, expect) in model.iter().enumerate() {
            prop_assert_eq!(p.get(slot as u16), expect.as_deref());
        }
        // Compaction changes nothing observable.
        p.compact();
        for (slot, expect) in model.iter().enumerate() {
            prop_assert_eq!(p.get(slot as u16), expect.as_deref());
        }
    }

    #[test]
    fn record_codec_round_trips(ints in prop::collection::vec(any::<i64>(), 0..6), s in ".*") {
        let mut cols: Vec<(String, ColumnType)> =
            ints.iter().enumerate().map(|(i, _)| (format!("c{i}"), ColumnType::Int)).collect();
        cols.push(("s".into(), ColumnType::Str));
        let schema = Schema::new(cols);
        let mut values: Vec<Value> = ints.iter().map(|&v| Value::Int(v)).collect();
        values.push(Value::Str(s));
        let rec = Record::new(values);
        if let Ok(bytes) = rec.encode(&schema) {
            prop_assert_eq!(Record::decode(&schema, &bytes).unwrap(), rec);
        }
    }

    #[test]
    fn buffer_pool_miss_count_matches_lru_simulator(
        trace in prop::collection::vec(0u32..24, 0..400),
        frames in 1usize..12,
    ) {
        let mut disk = InMemoryDisk::new();
        for _ in 0..24 {
            disk.allocate_page();
        }
        let mut pool = BufferPool::new(disk, PoolConfig::lru(frames));
        for &p in &trace {
            pool.with_page(p, |_| ()).unwrap();
        }
        prop_assert_eq!(
            pool.stats().misses,
            epfis_lrusim::simulate_lru(&trace, frames)
        );
        prop_assert_eq!(pool.stats().requests, trace.len() as u64);
    }

    #[test]
    fn heap_file_preserves_every_record(keys in prop::collection::vec(any::<i64>(), 1..300), frames in 1usize..8) {
        let schema = Schema::new(vec![("k", ColumnType::Int)]);
        let mut pool = BufferPool::new(InMemoryDisk::new(), PoolConfig::lru(frames));
        let mut heap = HeapFile::create(&mut pool, schema);
        let mut rids = Vec::new();
        for &k in &keys {
            rids.push(heap.insert(&mut pool, &Record::new(vec![Value::Int(k)])).unwrap());
        }
        for (&k, &rid) in keys.iter().zip(&rids) {
            let rec = heap.get(&mut pool, rid).unwrap();
            prop_assert_eq!(rec.values[0].as_int(), Some(k));
        }
        prop_assert_eq!(heap.record_count(&mut pool).unwrap(), keys.len() as u64);
    }

    #[test]
    fn dirty_pages_survive_arbitrary_eviction_pressure(
        writes in prop::collection::vec((0u32..16, any::<u8>()), 1..100),
        frames in 1usize..4,
    ) {
        // Write one marker record per page through a tiny pool, interleaved
        // so evictions constantly flush dirty pages; verify final contents.
        let mut disk = InMemoryDisk::new();
        for _ in 0..16 {
            disk.allocate_page();
        }
        let mut pool = BufferPool::new(disk, PoolConfig::lru(frames));
        let mut model: std::collections::HashMap<u32, Vec<u8>> = Default::default();
        for (pid, byte) in writes {
            pool.with_page_mut(pid, |b| {
                page::insert(b, &[byte]).unwrap();
            })
            .unwrap();
            model.entry(pid).or_default().push(byte);
        }
        for (pid, expect) in model {
            let got = pool
                .with_page(pid, |b| {
                    (0..page::slot_count(b))
                        .filter_map(|s| page::get(b, s).map(|x| x[0]))
                        .collect::<Vec<u8>>()
                })
                .unwrap();
            prop_assert_eq!(got, expect, "page {}", pid);
        }
    }
}
