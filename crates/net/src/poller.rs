//! A thin, std-only readiness poller: `epoll(7)` on Linux with a portable
//! `poll(2)` fallback.
//!
//! The wrapper is deliberately minimal — level-triggered only, `usize`
//! tokens chosen by the caller, one reusable event buffer — because the
//! [`crate::driver`] above it owns all connection state. Both backends are
//! constructible on Linux so the fallback path has first-class test
//! coverage instead of rotting behind a `cfg`.
//!
//! The bindings are local `extern "C"` declarations against the libc that
//! std already links; no new dependency.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Caller-chosen identifier attached to a registered descriptor and
/// reported back on its events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token(pub usize);

/// Which readiness classes the caller wants reported for a descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report.
///
/// Error/hangup conditions are folded into `readable` (and `writable`): the
/// next `read(2)`/`write(2)` then observes the actual `EOF`/errno, which is
/// the one classification point ([`crate::io::ReadStep`]) the serving loops
/// already trust.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: Token,
    pub readable: bool,
    pub writable: bool,
}

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLLIN: u32 = 0x1;
const EPOLLOUT: u32 = 0x4;
const EPOLLERR: u32 = 0x8;
const EPOLLHUP: u32 = 0x10;

// The kernel ABI packs this struct on x86-64 (a 12-byte layout); other
// architectures use natural alignment.
#[repr(C)]
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[cfg(target_os = "linux")]
extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

const POLLIN: i16 = 0x1;
const POLLOUT: i16 = 0x4;
const POLLERR: i16 = 0x8;
const POLLHUP: i16 = 0x10;
const POLLNVAL: i16 = 0x20;

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

struct PollReg {
    fd: RawFd,
    token: Token,
    interest: Interest,
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll { epfd: RawFd, buf: Vec<EpollEvent> },
    Poll {
        regs: Vec<PollReg>,
        buf: Vec<PollFd>,
    },
}

/// Level-triggered readiness poller over either backend.
pub struct Poller {
    backend: Backend,
}

fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            // Round up so a short positive timeout never busy-loops as 0.
            let ms = d.as_millis();
            let ms = if ms == 0 && !d.is_zero() { 1 } else { ms };
            ms.min(i32::MAX as u128) as i32
        }
    }
}

impl Poller {
    /// The preferred backend for this platform: epoll on Linux, poll(2)
    /// elsewhere.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                backend: Backend::Epoll {
                    epfd,
                    buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
                },
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Self::with_poll_backend()
        }
    }

    /// Force the portable `poll(2)` backend (also available on Linux, so the
    /// fallback is exercised by the regular test suite).
    pub fn with_poll_backend() -> io::Result<Poller> {
        Ok(Poller {
            backend: Backend::Poll {
                regs: Vec::new(),
                buf: Vec::new(),
            },
        })
    }

    /// True when this poller runs on the epoll backend.
    pub fn is_epoll(&self) -> bool {
        #[cfg(target_os = "linux")]
        {
            matches!(self.backend, Backend::Epoll { .. })
        }
        #[cfg(not(target_os = "linux"))]
        {
            false
        }
    }

    fn epoll_mask(interest: Interest) -> u32 {
        let mut events = 0;
        if interest.readable {
            events |= EPOLLIN;
        }
        if interest.writable {
            events |= EPOLLOUT;
        }
        events
    }

    pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => {
                let mut ev = EpollEvent {
                    events: Self::epoll_mask(interest),
                    data: token.0 as u64,
                };
                if unsafe { epoll_ctl(*epfd, EPOLL_CTL_ADD, fd, &mut ev) } != 0 {
                    return Err(io::Error::last_os_error());
                }
                Ok(())
            }
            Backend::Poll { regs, .. } => {
                if regs.iter().any(|r| r.fd == fd) {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "fd already registered",
                    ));
                }
                regs.push(PollReg {
                    fd,
                    token,
                    interest,
                });
                Ok(())
            }
        }
    }

    pub fn modify(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => {
                let mut ev = EpollEvent {
                    events: Self::epoll_mask(interest),
                    data: token.0 as u64,
                };
                if unsafe { epoll_ctl(*epfd, EPOLL_CTL_MOD, fd, &mut ev) } != 0 {
                    return Err(io::Error::last_os_error());
                }
                Ok(())
            }
            Backend::Poll { regs, .. } => {
                for reg in regs.iter_mut() {
                    if reg.fd == fd {
                        reg.token = token;
                        reg.interest = interest;
                        return Ok(());
                    }
                }
                Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
            }
        }
    }

    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => {
                // Pre-2.6.9 kernels require a non-null event pointer for DEL.
                let mut ev = EpollEvent { events: 0, data: 0 };
                if unsafe { epoll_ctl(*epfd, EPOLL_CTL_DEL, fd, &mut ev) } != 0 {
                    return Err(io::Error::last_os_error());
                }
                Ok(())
            }
            Backend::Poll { regs, .. } => {
                let before = regs.len();
                regs.retain(|r| r.fd != fd);
                if regs.len() == before {
                    return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
                }
                Ok(())
            }
        }
    }

    /// Wait up to `timeout` (`None` = forever) and append readiness reports
    /// to `events` (which is cleared first). A signal arriving during the
    /// wait (`EINTR`) is reported as zero events, not an error.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let ms = timeout_ms(timeout);
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, buf } => {
                let n = unsafe { epoll_wait(*epfd, buf.as_mut_ptr(), buf.len() as i32, ms) };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(err);
                }
                for ev in &buf[..n as usize] {
                    // Copy out of the (possibly packed) struct before use.
                    let bits = ev.events;
                    let data = ev.data;
                    events.push(Event {
                        token: Token(data as usize),
                        readable: bits & (EPOLLIN | EPOLLHUP | EPOLLERR) != 0,
                        writable: bits & (EPOLLOUT | EPOLLERR) != 0,
                    });
                }
                Ok(())
            }
            Backend::Poll { regs, buf } => {
                buf.clear();
                for reg in regs.iter() {
                    let mut ev = 0i16;
                    if reg.interest.readable {
                        ev |= POLLIN;
                    }
                    if reg.interest.writable {
                        ev |= POLLOUT;
                    }
                    buf.push(PollFd {
                        fd: reg.fd,
                        events: ev,
                        revents: 0,
                    });
                }
                let n = unsafe { poll(buf.as_mut_ptr(), buf.len() as u64, ms) };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(err);
                }
                for (reg, fd) in regs.iter().zip(buf.iter()) {
                    if fd.revents == 0 {
                        continue;
                    }
                    let bad = fd.revents & (POLLERR | POLLHUP | POLLNVAL) != 0;
                    events.push(Event {
                        token: reg.token,
                        readable: fd.revents & POLLIN != 0 || bad,
                        writable: fd.revents & POLLOUT != 0 || fd.revents & POLLERR != 0,
                    });
                }
                Ok(())
            }
        }
    }
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        if let Backend::Epoll { epfd, .. } = &self.backend {
            unsafe { close(*epfd) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    fn backends() -> Vec<Poller> {
        let mut pollers = vec![Poller::with_poll_backend().expect("poll backend")];
        if cfg!(target_os = "linux") {
            let p = Poller::new().expect("native backend");
            assert!(p.is_epoll(), "Linux default backend should be epoll");
            pollers.push(p);
        }
        pollers
    }

    #[test]
    fn reports_readable_when_data_arrives() {
        for mut poller in backends() {
            let (mut a, b) = pair();
            b.set_nonblocking(true).expect("nonblocking");
            poller
                .register(b.as_raw_fd(), Token(7), Interest::READABLE)
                .expect("register");
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .expect("wait");
            assert!(events.is_empty(), "no data yet → no events");

            a.write_all(b"x").expect("write");
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .expect("wait");
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].token, Token(7));
            assert!(events[0].readable);
            let mut buf = [0u8; 4];
            let mut bsock = &b;
            assert_eq!(bsock.read(&mut buf).expect("read"), 1);
        }
    }

    #[test]
    fn write_interest_and_modify_and_deregister() {
        for mut poller in backends() {
            let (a, _b) = pair();
            a.set_nonblocking(true).expect("nonblocking");
            poller
                .register(a.as_raw_fd(), Token(3), Interest::WRITABLE)
                .expect("register");
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .expect("wait");
            assert_eq!(events.len(), 1, "fresh socket has send-buffer space");
            assert!(events[0].writable);

            // Drop write interest: level-triggered writable must stop firing.
            poller
                .modify(a.as_raw_fd(), Token(3), Interest::READABLE)
                .expect("modify");
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .expect("wait");
            assert!(events.is_empty());

            poller.deregister(a.as_raw_fd()).expect("deregister");
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .expect("wait");
            assert!(events.is_empty());
        }
    }

    #[test]
    fn hangup_is_reported_as_readable() {
        for mut poller in backends() {
            let (a, b) = pair();
            b.set_nonblocking(true).expect("nonblocking");
            poller
                .register(b.as_raw_fd(), Token(1), Interest::READABLE)
                .expect("register");
            drop(a);
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .expect("wait");
            assert_eq!(events.len(), 1);
            assert!(
                events[0].readable,
                "hangup folds into readable so read() sees EOF"
            );
        }
    }
}
