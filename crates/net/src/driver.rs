//! A single-threaded, readiness-driven connection driver.
//!
//! [`Driver::run`] multiplexes one nonblocking listener plus any number of
//! nonblocking TCP connections over a [`Poller`]. All protocol behavior
//! lives in the caller's [`Session`] state machine (bytes in → response
//! bytes out); the driver owns only transport mechanics:
//!
//! * **accept** — drained to `EWOULDBLOCK` each time the listener fires;
//!   every accepted socket is offered to the [`SessionFactory`], which may
//!   decline it (admission shed) by consuming the stream.
//! * **read** — drained to `EWOULDBLOCK`, with `EINTR` retried, feeding
//!   [`Session::on_bytes`]. Reading *stops* while a connection's unflushed
//!   output backlog exceeds the backpressure watermark, so a peer that
//!   pipelines requests without reading responses stalls only itself.
//! * **write** — nonblocking with partial-write accounting; when the socket
//!   would block, write interest is registered and the backlog kept. A
//!   session that closed is removed the moment its backlog drains, or at a
//!   bounded grace deadline if the peer never drains it — the event-loop
//!   equivalent of the pool front end's write deadline.
//! * **tick** — [`Session::on_tick`] fires on every slot at a fixed cadence
//!   for idle-deadline enforcement.
//!
//! The driver never blocks on any one peer; a non-reading client costs one
//! slot and (bounded) buffer, not a thread.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::time::{Duration, Instant};

use crate::io::ReadStep;
use crate::poller::{Event, Interest, Poller, Token};

/// What a session wants the driver to do with the connection afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep serving.
    Continue,
    /// Flush whatever is buffered, then close the connection.
    Close,
}

/// A per-connection protocol state machine.
///
/// Implementations must never block: they receive bytes, append response
/// bytes to `out`, and return whether the connection should stay open.
pub trait Session {
    /// `data` arrived from the peer. Append any responses to `out`.
    fn on_bytes(&mut self, data: &[u8], out: &mut Vec<u8>) -> Control;

    /// The output backlog drained below the watermark; resume any work the
    /// session deferred to bound `out` growth. Must be a no-op (and return
    /// [`Control::Continue`]) when there is nothing deferred.
    fn on_writable(&mut self, out: &mut Vec<u8>) -> Control {
        let _ = out;
        Control::Continue
    }

    /// Periodic tick (idle deadlines, etc.).
    fn on_tick(&mut self, out: &mut Vec<u8>) -> Control {
        let _ = out;
        Control::Continue
    }

    /// `n` bytes were actually written to the socket (for byte accounting).
    fn on_wrote(&mut self, n: usize) {
        let _ = n;
    }
}

/// Creates sessions for accepted connections and owns admission policy.
pub trait SessionFactory {
    type Session: Session;

    /// Offer an accepted connection. Return `None` to decline it (the
    /// factory consumes the stream, so it can write a shed notice before
    /// dropping); return the stream back with a session to serve it.
    /// The stream is still in blocking mode here; the driver switches it to
    /// nonblocking after admission.
    fn admit(&mut self, stream: TcpStream, peer: SocketAddr) -> Option<(TcpStream, Self::Session)>;

    /// A connection ended (any cause). Always called exactly once per
    /// admitted session.
    fn closed(&mut self, session: Self::Session);

    /// Checked every loop iteration; `true` stops the driver after a final
    /// flush pass.
    fn should_stop(&self) -> bool;
}

/// Tuning knobs for [`Driver::run`].
#[derive(Debug, Clone, Copy)]
pub struct DriverConfig {
    /// Cadence of [`Session::on_tick`] and of the `should_stop` check while
    /// idle.
    pub tick: Duration,
    /// Size of the shared read buffer (one `read(2)` max).
    pub read_chunk: usize,
    /// Stop reading from a connection while its unflushed output exceeds
    /// this many bytes.
    pub write_backlog_watermark: usize,
    /// How long a closing connection may take to drain its final bytes
    /// before being dropped with output pending.
    pub close_grace: Duration,
    /// Force the portable `poll(2)` backend instead of epoll.
    pub force_poll_backend: bool,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            tick: Duration::from_millis(50),
            read_chunk: 64 * 1024,
            write_backlog_watermark: 256 * 1024,
            close_grace: Duration::from_secs(5),
            force_poll_backend: false,
        }
    }
}

struct Slot<S> {
    stream: TcpStream,
    session: S,
    out: Vec<u8>,
    written: usize,
    interest: Interest,
    closing: bool,
    close_deadline: Option<Instant>,
}

enum FlushStep {
    Drained,
    Blocked,
    Failed,
}

const LISTENER_TOKEN: Token = Token(0);

/// The event loop. See the module docs for the contract.
pub struct Driver<F: SessionFactory> {
    poller: Poller,
    listener: TcpListener,
    factory: F,
    config: DriverConfig,
    slots: Vec<Option<Slot<F::Session>>>,
    free: Vec<usize>,
    read_buf: Vec<u8>,
}

impl<F: SessionFactory> Driver<F> {
    /// Run the loop until [`SessionFactory::should_stop`] reports true.
    /// Consumes the listener; returns the factory for final accounting.
    pub fn run(listener: TcpListener, factory: F, config: DriverConfig) -> io::Result<F> {
        listener.set_nonblocking(true)?;
        let mut poller = if config.force_poll_backend {
            Poller::with_poll_backend()?
        } else {
            Poller::new()?
        };
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READABLE)?;
        let mut driver = Driver {
            poller,
            listener,
            factory,
            config,
            slots: Vec::new(),
            free: Vec::new(),
            read_buf: vec![0u8; config.read_chunk.max(1)],
        };
        driver.serve()?;
        driver.shutdown_flush();
        Ok(driver.factory)
    }

    fn serve(&mut self) -> io::Result<()> {
        let mut events: Vec<Event> = Vec::new();
        let mut next_tick = Instant::now() + self.config.tick;
        loop {
            if self.factory.should_stop() {
                return Ok(());
            }
            let timeout = next_tick.saturating_duration_since(Instant::now());
            self.poller.wait(&mut events, Some(timeout))?;
            // `events` is only mutated by `wait`, which runs strictly before
            // the dispatch below; taking it avoids aliasing `self`.
            let batch = std::mem::take(&mut events);
            for ev in &batch {
                if ev.token == LISTENER_TOKEN {
                    self.accept_ready();
                } else {
                    let idx = ev.token.0 - 1;
                    if self.slots.get(idx).is_some_and(Option::is_some) {
                        if ev.readable {
                            self.handle_readable(idx);
                        }
                        if ev.writable && self.slots[idx].is_some() {
                            self.pump(idx);
                        }
                    }
                }
            }
            events = batch;
            let now = Instant::now();
            if now >= next_tick {
                self.tick_all(now);
                next_tick = now + self.config.tick;
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    let Some((stream, session)) = self.factory.admit(stream, peer) else {
                        continue;
                    };
                    if stream.set_nonblocking(true).is_err() {
                        self.factory.closed(session);
                        continue;
                    }
                    let idx = self.free.pop().unwrap_or_else(|| {
                        self.slots.push(None);
                        self.slots.len() - 1
                    });
                    let interest = Interest::READABLE;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), Token(idx + 1), interest)
                        .is_err()
                    {
                        self.free.push(idx);
                        self.factory.closed(session);
                        continue;
                    }
                    self.slots[idx] = Some(Slot {
                        stream,
                        session,
                        out: Vec::new(),
                        written: 0,
                        interest,
                        closing: false,
                        close_deadline: None,
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // Transient accept errors (ECONNABORTED, EMFILE, ...) —
                // drop this readiness edge; the listener stays registered.
                Err(_) => return,
            }
        }
    }

    fn handle_readable(&mut self, idx: usize) {
        loop {
            let slot = self.slots[idx].as_mut().expect("live slot");
            if slot.closing {
                break;
            }
            if slot.out.len() - slot.written >= self.config.write_backlog_watermark {
                // Backpressure: don't read more until the backlog drains.
                break;
            }
            match ReadStep::classify(slot.stream.read(&mut self.read_buf)) {
                ReadStep::Data(n) => {
                    if slot.session.on_bytes(&self.read_buf[..n], &mut slot.out) == Control::Close {
                        self.begin_close(idx);
                        break;
                    }
                }
                ReadStep::Retry => continue,
                ReadStep::Idle => break,
                ReadStep::Eof | ReadStep::Fatal(_) => {
                    // Best-effort final flush, then drop: with the read side
                    // gone there is nothing left to serve.
                    let _ = self.try_flush(idx);
                    self.remove(idx);
                    return;
                }
            }
        }
        self.pump(idx);
    }

    /// Flush; on drain give the session a chance to resume deferred work,
    /// and repeat while it produces output. Removes the slot on write
    /// failure or on a drained `closing` connection.
    fn pump(&mut self, idx: usize) {
        loop {
            match self.try_flush(idx) {
                FlushStep::Failed => {
                    self.remove(idx);
                    return;
                }
                FlushStep::Blocked => {
                    self.set_interest(idx, Interest::BOTH);
                    return;
                }
                FlushStep::Drained => {
                    let slot = self.slots[idx].as_mut().expect("live slot");
                    if slot.closing {
                        self.remove(idx);
                        return;
                    }
                    if slot.interest.writable {
                        self.set_interest(idx, Interest::READABLE);
                    }
                    let slot = self.slots[idx].as_mut().expect("live slot");
                    let before = slot.out.len();
                    let control = slot.session.on_writable(&mut slot.out);
                    let produced = slot.out.len() > before;
                    if control == Control::Close {
                        self.begin_close(idx);
                        if !produced {
                            // Nothing left to drain; close now.
                            self.remove(idx);
                            return;
                        }
                        continue;
                    }
                    if !produced {
                        return;
                    }
                }
            }
        }
    }

    fn try_flush(&mut self, idx: usize) -> FlushStep {
        let slot = self.slots[idx].as_mut().expect("live slot");
        while slot.written < slot.out.len() {
            match slot.stream.write(&slot.out[slot.written..]) {
                Ok(0) => return FlushStep::Failed,
                Ok(n) => {
                    slot.written += n;
                    slot.session.on_wrote(n);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    // Compact so the backlog is bounded by unsent bytes.
                    if slot.written > 0 {
                        slot.out.drain(..slot.written);
                        slot.written = 0;
                    }
                    return FlushStep::Blocked;
                }
                Err(_) => return FlushStep::Failed,
            }
        }
        slot.out.clear();
        slot.written = 0;
        FlushStep::Drained
    }

    fn begin_close(&mut self, idx: usize) {
        let grace = self.config.close_grace;
        let slot = self.slots[idx].as_mut().expect("live slot");
        if !slot.closing {
            slot.closing = true;
            slot.close_deadline = Some(Instant::now() + grace);
        }
    }

    fn set_interest(&mut self, idx: usize, interest: Interest) {
        let slot = self.slots[idx].as_mut().expect("live slot");
        if slot.interest == interest {
            return;
        }
        let fd = slot.stream.as_raw_fd();
        slot.interest = interest;
        let _ = self.poller.modify(fd, Token(idx + 1), interest);
    }

    fn tick_all(&mut self, now: Instant) {
        for idx in 0..self.slots.len() {
            let Some(slot) = self.slots[idx].as_mut() else {
                continue;
            };
            if slot.closing {
                if slot.close_deadline.is_some_and(|d| now >= d) {
                    // The peer never drained our final bytes within the
                    // grace period: reclaim the slot anyway.
                    self.remove(idx);
                }
                continue;
            }
            if slot.session.on_tick(&mut slot.out) == Control::Close {
                self.begin_close(idx);
            }
            self.pump(idx);
        }
    }

    fn remove(&mut self, idx: usize) {
        let slot = self.slots[idx].take().expect("live slot");
        let _ = self.poller.deregister(slot.stream.as_raw_fd());
        self.factory.closed(slot.session);
        self.free.push(idx);
    }

    /// One best-effort nonblocking flush for every live connection, then
    /// close them all.
    fn shutdown_flush(&mut self) {
        for idx in 0..self.slots.len() {
            if self.slots[idx].is_some() {
                let _ = self.try_flush(idx);
                self.remove(idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write as IoWrite};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    /// Line-echo session: `QUIT` asks for a close, anything else echoes.
    struct Echo {
        pending: Vec<u8>,
    }

    impl Session for Echo {
        fn on_bytes(&mut self, data: &[u8], out: &mut Vec<u8>) -> Control {
            self.pending.extend_from_slice(data);
            while let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.pending.drain(..=pos).collect();
                if &line[..] == b"QUIT\n" {
                    out.extend_from_slice(b"bye\n");
                    return Control::Close;
                }
                out.extend_from_slice(b"echo ");
                out.extend_from_slice(&line);
            }
            Control::Continue
        }
    }

    struct EchoFactory {
        stop: Arc<AtomicBool>,
        open: Arc<AtomicUsize>,
        closed: Arc<AtomicUsize>,
    }

    impl SessionFactory for EchoFactory {
        type Session = Echo;
        fn admit(&mut self, stream: TcpStream, _peer: SocketAddr) -> Option<(TcpStream, Echo)> {
            self.open.fetch_add(1, Ordering::SeqCst);
            Some((
                stream,
                Echo {
                    pending: Vec::new(),
                },
            ))
        }
        fn closed(&mut self, _session: Echo) {
            self.closed.fetch_add(1, Ordering::SeqCst);
        }
        fn should_stop(&self) -> bool {
            self.stop.load(Ordering::SeqCst)
        }
    }

    fn start_echo(
        force_poll: bool,
    ) -> (
        SocketAddr,
        Arc<AtomicBool>,
        Arc<AtomicUsize>,
        std::thread::JoinHandle<()>,
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let stop = Arc::new(AtomicBool::new(false));
        let closed = Arc::new(AtomicUsize::new(0));
        let factory = EchoFactory {
            stop: Arc::clone(&stop),
            open: Arc::new(AtomicUsize::new(0)),
            closed: Arc::clone(&closed),
        };
        let config = DriverConfig {
            tick: Duration::from_millis(10),
            force_poll_backend: force_poll,
            ..DriverConfig::default()
        };
        let handle = std::thread::spawn(move || {
            Driver::run(listener, factory, config).expect("driver");
        });
        (addr, stop, closed, handle)
    }

    fn echo_roundtrip(force_poll: bool) {
        let (addr, stop, closed, handle) = start_echo(force_poll);
        let mut conns = Vec::new();
        for i in 0..8 {
            let stream = TcpStream::connect(addr).expect("connect");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut stream = stream;
            writeln!(stream, "hello {i}").expect("write");
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            assert_eq!(line, format!("echo hello {i}\n"));
            conns.push((stream, reader));
        }
        // Flush-then-close on QUIT.
        let (ref mut s0, ref mut r0) = conns[0];
        s0.write_all(b"QUIT\n").expect("write quit");
        let mut line = String::new();
        r0.read_line(&mut line).expect("read bye");
        assert_eq!(line, "bye\n");
        assert_eq!(r0.read_line(&mut line).expect("eof"), 0, "closed after bye");

        stop.store(true, Ordering::SeqCst);
        // Wake the loop: the tick cadence also notices, but a connect is
        // immediate.
        let _ = TcpStream::connect(addr);
        handle.join().expect("driver thread");
        assert!(
            closed.load(Ordering::SeqCst) >= 8,
            "all sessions reported closed"
        );
    }

    #[test]
    fn echo_roundtrip_native_backend() {
        echo_roundtrip(false);
    }

    #[test]
    fn echo_roundtrip_poll_backend() {
        echo_roundtrip(true);
    }

    /// A peer that stops reading must not wedge the loop: other clients
    /// stay served, and the stalled connection is reclaimed at the close
    /// grace deadline once its session asks to close.
    #[test]
    fn non_reading_peer_does_not_block_others() {
        let (addr, stop, _closed, handle) = start_echo(false);
        let mut staller = TcpStream::connect(addr).expect("connect");
        // Push enough request bytes that the echoed responses overflow the
        // socket buffers of a peer that never reads.
        staller.set_nonblocking(true).expect("nonblocking");
        let chunk = [b'a'; 1023];
        let mut burst = Vec::new();
        for _ in 0..4096 {
            burst.extend_from_slice(&chunk);
            burst.push(b'\n');
        }
        let mut sent = 0;
        while sent < burst.len() {
            match staller.write(&burst[sent..]) {
                Ok(n) => sent += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => panic!("write: {e}"),
            }
        }
        // While the staller's backlog sits unflushed, a well-behaved client
        // must be served promptly.
        let well_behaved = TcpStream::connect(addr).expect("connect");
        well_behaved
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut reader = BufReader::new(well_behaved.try_clone().expect("clone"));
        let mut w = well_behaved;
        w.write_all(b"ping\n").expect("write");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        assert_eq!(line, "echo ping\n");

        stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(addr);
        handle.join().expect("driver thread");
    }
}
