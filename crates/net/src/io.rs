//! Shared classification of socket I/O results.
//!
//! Every front end used to pattern-match `io::Error` ad hoc, and two of the
//! matches were wrong in the same way: `Err(_)` arms treated **any** error —
//! including `EINTR`, which merely means "a signal arrived while the syscall
//! was parked" — as the peer hanging up. [`ReadStep::classify`] is the one
//! shared truth table, and [`read_step`] applies it to a `Read`.
//!
//! A subtlety worth recording: on Linux, a `read(2)`/`recv(2)` on a socket
//! with a receive timeout (`SO_RCVTIMEO`, which the blocking front end sets
//! for its poll interval) is *never* automatically restarted after a signal,
//! even when the handler was installed with `SA_RESTART` — see signal(7).
//! So any process that both serves sockets and receives signals (SIGCHLD
//! from a spawned subprocess is enough) will eventually observe a genuine
//! `EINTR` on a healthy connection. The regression tests below provoke one
//! deliberately with `pthread_kill`.

use std::io::{self, ErrorKind, Read};

/// The outcome of one read attempt, classified for a serving loop.
#[derive(Debug)]
pub enum ReadStep {
    /// `n > 0` bytes arrived.
    Data(usize),
    /// Orderly end of stream: the peer shut down its write side.
    Eof,
    /// `EINTR`: a signal interrupted the syscall. Retry immediately —
    /// the connection is healthy.
    Retry,
    /// `EAGAIN`/`EWOULDBLOCK` or a receive-timeout expiry: no data yet.
    /// The caller should wait for readiness (or run its idle checks).
    Idle,
    /// A real transport error; the connection is unusable.
    Fatal(io::Error),
}

impl ReadStep {
    /// Classify the raw result of a `read(2)`-like call.
    pub fn classify(result: io::Result<usize>) -> ReadStep {
        match result {
            Ok(0) => ReadStep::Eof,
            Ok(n) => ReadStep::Data(n),
            Err(e) => match e.kind() {
                ErrorKind::Interrupted => ReadStep::Retry,
                ErrorKind::WouldBlock | ErrorKind::TimedOut => ReadStep::Idle,
                _ => ReadStep::Fatal(e),
            },
        }
    }
}

/// Read once from `stream` into `buf` and classify the result.
///
/// `Retry` is resolved internally (the read is reissued), so callers only
/// ever see `Data`/`Eof`/`Idle`/`Fatal` — the four states a serving loop
/// actually branches on.
pub fn read_step<R: Read>(stream: &mut R, buf: &mut [u8]) -> ReadStep {
    loop {
        match ReadStep::classify(stream.read(buf)) {
            ReadStep::Retry => continue,
            step => return step,
        }
    }
}

/// Raise the soft `RLIMIT_NOFILE` limit toward `want` file descriptors.
///
/// Returns the resulting soft limit (which may be the unchanged current one
/// if it already satisfies `want`, or the hard cap if `want` exceeds it and
/// the process lacks `CAP_SYS_RESOURCE` — a privileged process gets its hard
/// limit raised too, bounded by the kernel's `fs.nr_open`). Used by the
/// 10k-connection tests and the open-loop load generator; a default soft
/// limit of 1024 would otherwise fail `accept`/`connect` long before the
/// event loop is stressed.
#[cfg(target_os = "linux")]
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    #[repr(C)]
    struct Rlimit {
        rlim_cur: u64,
        rlim_max: u64,
    }
    const RLIMIT_NOFILE: i32 = 7;
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }
    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.rlim_cur >= want {
        return Ok(lim.rlim_cur);
    }
    if lim.rlim_max < want {
        // Privileged processes may lift the hard cap as well; EPERM just
        // means we settle for the existing hard cap below.
        let raised = Rlimit {
            rlim_cur: want,
            rlim_max: want,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
            return Ok(want);
        }
    }
    lim.rlim_cur = want.min(lim.rlim_max);
    if unsafe { setrlimit(RLIMIT_NOFILE, &lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(lim.rlim_cur)
}

/// Portable stub: leave the limit alone and report a conservative value.
#[cfg(not(target_os = "linux"))]
pub fn raise_nofile_limit(_want: u64) -> io::Result<u64> {
    Ok(1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_table() {
        assert!(matches!(ReadStep::classify(Ok(0)), ReadStep::Eof));
        assert!(matches!(ReadStep::classify(Ok(17)), ReadStep::Data(17)));
        assert!(matches!(
            ReadStep::classify(Err(io::Error::from(ErrorKind::Interrupted))),
            ReadStep::Retry
        ));
        assert!(matches!(
            ReadStep::classify(Err(io::Error::from(ErrorKind::WouldBlock))),
            ReadStep::Idle
        ));
        assert!(matches!(
            ReadStep::classify(Err(io::Error::from(ErrorKind::TimedOut))),
            ReadStep::Idle
        ));
        assert!(matches!(
            ReadStep::classify(Err(io::Error::from(ErrorKind::ConnectionReset))),
            ReadStep::Fatal(_)
        ));
    }

    #[test]
    fn read_step_resolves_retry_and_reads_data() {
        struct FlakyReader {
            interruptions_left: usize,
            payload: &'static [u8],
        }
        impl Read for FlakyReader {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.interruptions_left > 0 {
                    self.interruptions_left -= 1;
                    return Err(io::Error::from(ErrorKind::Interrupted));
                }
                let n = self.payload.len().min(buf.len());
                buf[..n].copy_from_slice(&self.payload[..n]);
                self.payload = &self.payload[n..];
                Ok(n)
            }
        }
        let mut r = FlakyReader {
            interruptions_left: 3,
            payload: b"PING\n",
        };
        let mut buf = [0u8; 16];
        match read_step(&mut r, &mut buf) {
            ReadStep::Data(5) => assert_eq!(&buf[..5], b"PING\n"),
            other => panic!("expected Data(5), got {other:?}"),
        }
        match read_step(&mut r, &mut buf) {
            ReadStep::Eof => {}
            other => panic!("expected Eof, got {other:?}"),
        }
    }

    #[test]
    fn raise_nofile_limit_is_monotone() {
        let before = raise_nofile_limit(0).expect("query limit");
        let after = raise_nofile_limit(before).expect("raise limit");
        assert!(after >= before.min(after));
    }

    /// Provoke a *genuine* `EINTR` on a healthy socket and prove the
    /// classified read loop rides through it.
    ///
    /// The reader thread parks in `recv(2)` on a socket with a long
    /// `SO_RCVTIMEO`; per signal(7) such a read is never auto-restarted
    /// after a signal, so `pthread_kill(SIGUSR1)` makes it fail with
    /// `EINTR`. Before the fix, both the server frame reader and the obs
    /// HTTP loop would have treated that as the peer closing.
    #[cfg(target_os = "linux")]
    #[test]
    fn genuine_eintr_does_not_close_a_healthy_connection() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        use std::sync::mpsc;
        use std::time::Duration;

        const SIGUSR1: i32 = 10;
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
            fn pthread_self() -> u64;
            fn pthread_kill(thread: u64, sig: i32) -> i32;
        }
        extern "C" fn noop_handler(_sig: i32) {}
        // Install a handler so SIGUSR1 interrupts rather than kills. glibc's
        // signal() uses BSD (SA_RESTART) semantics, which is exactly the
        // hostile case: timeout-socket reads still return EINTR under it.
        unsafe { signal(SIGUSR1, noop_handler as *const () as usize) };

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (mut server_side, _) = listener.accept().expect("accept");
        server_side
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("set timeout");

        let (tid_tx, tid_rx) = mpsc::channel();
        let (parked_tx, parked_rx) = mpsc::channel();
        let reader = std::thread::spawn(move || {
            tid_tx.send(unsafe { pthread_self() }).unwrap();
            let mut buf = [0u8; 16];
            parked_tx.send(()).unwrap();
            // read_step must absorb the EINTR and come back with the data
            // that arrives afterwards.
            match read_step(&mut server_side, &mut buf) {
                ReadStep::Data(n) => buf[..n].to_vec(),
                other => panic!("healthy connection misclassified as {other:?}"),
            }
        });
        let tid = tid_rx.recv().expect("reader tid");
        parked_rx.recv().expect("reader parked");
        // Give the reader time to actually enter recv(2), then interrupt it
        // a few times for good measure.
        for _ in 0..3 {
            std::thread::sleep(Duration::from_millis(50));
            assert_eq!(unsafe { pthread_kill(tid, SIGUSR1) }, 0);
        }
        client.write_all(b"still here\n").expect("write");
        let got = reader.join().expect("reader thread");
        assert_eq!(&got, b"still here\n");
    }
}
