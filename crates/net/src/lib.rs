//! `epfis-net`: a readiness-driven connection core for the EPFIS server.
//!
//! The worker-pool front end in `epfis-server` dedicates one blocking thread
//! per in-flight connection, which caps concurrency at the pool size and —
//! before PR 8 — let a peer that stopped *reading* pin a worker forever in
//! `write_all`. This crate provides the pieces needed to serve the same
//! protocol state machines without a thread per connection:
//!
//! * [`io`] — shared classification of `read(2)`/`write(2)` results
//!   ([`ReadStep`]): `EINTR` is a retry, `EAGAIN`/timeouts are "no data yet",
//!   and only genuine errors or EOF tear a connection down. Both front ends
//!   (and the obs HTTP server) route their syscall results through this one
//!   table so a stray signal can never be mistaken for a peer close again.
//!   Also hosts [`io::raise_nofile_limit`], used by tests and the load
//!   generator to lift `RLIMIT_NOFILE` before opening 10k+ sockets.
//! * [`poller`] — a thin wrapper over `epoll(7)` with a portable `poll(2)`
//!   fallback ([`Poller`]). Level-triggered, `usize` tokens, no allocation
//!   per wait beyond the reused event buffer.
//! * [`driver`] — a single-threaded connection [`Driver`] multiplexing any
//!   number of nonblocking TCP connections over a [`Session`] state machine:
//!   bytes in, response bytes out, with write backpressure (a connection
//!   with a deep unflushed backlog is not read from until it drains),
//!   deferred-work continuation, periodic ticks for idle deadlines, and a
//!   bounded-grace shutdown flush.
//!
//! The crate is std-only: the epoll/poll bindings are local `extern "C"`
//! declarations against the libc that std already links.

pub mod driver;
pub mod io;
pub mod poller;

pub use driver::{Control, Driver, DriverConfig, Session, SessionFactory};
pub use io::ReadStep;
pub use poller::{Event, Interest, Poller, Token};
