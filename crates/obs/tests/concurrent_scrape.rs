//! Scraping under fire: `/metrics` is served from worker threads while
//! every instrument kind is being hammered from others. The registry must
//! never panic, never emit a torn line, and counters must read
//! monotonically across consecutive renders even mid-increment.

use epfis_obs::Registry;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

/// Structural check of one exposition document: every line is a comment or
/// a `name{labels} value` sample with a parseable value, and every sample
/// belongs to a family announced by a preceding `# TYPE` line.
fn check_render(text: &str) -> Vec<(String, f64)> {
    let mut typed: Vec<String> = Vec::new();
    let mut samples = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest.split_whitespace().next().unwrap().to_string();
            let kind = rest.split_whitespace().nth(1).unwrap();
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown kind in {line:?}"
            );
            typed.push(name);
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        assert!(!line.is_empty(), "blank line in exposition");
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("torn sample line {line:?}");
        });
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable value in {line:?}"));
        let base = series.split('{').next().unwrap();
        assert!(
            typed.iter().any(|t| {
                base == t
                    || base == format!("{t}_bucket")
                    || base == format!("{t}_sum")
                    || base == format!("{t}_count")
                    || base == format!("{t}_max")
            }),
            "sample {series:?} has no preceding # TYPE"
        );
        samples.push((series.to_string(), value));
    }
    samples
}

#[test]
fn scrape_stays_coherent_under_concurrent_writes() {
    let registry = Arc::new(Registry::new());
    let external = Arc::new(AtomicU64::new(0));
    // One of each instrument kind, including the render-time callbacks the
    // server uses for the accuracy tracker and event-ring drop counter.
    let counter = registry.counter("hammer_ops_total", "ops", &[("kind", "write")]);
    let gauge = registry.gauge("hammer_inflight", "in flight", &[]);
    let hist = registry.histogram("hammer_latency_us", "latency", &[("cmd", "X")]);
    {
        let external = Arc::clone(&external);
        registry.counter_fn("hammer_external_total", "external", &[], move || {
            external.load(Ordering::Relaxed)
        });
    }
    {
        let external = Arc::clone(&external);
        registry.gauge_fn("hammer_external_gauge", "external g", &[], move || {
            external.load(Ordering::Relaxed) as f64
        });
    }

    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for w in 0..4u64 {
        let counter = Arc::clone(&counter);
        let gauge = Arc::clone(&gauge);
        let hist = Arc::clone(&hist);
        let external = Arc::clone(&external);
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        writers.push(thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                counter.inc();
                gauge.add(1);
                hist.record(i % 4096);
                external.fetch_add(1, Ordering::Relaxed);
                if i % 64 == 0 {
                    // New series appear mid-scrape too (a fresh command
                    // label registering its histogram on first use).
                    registry.counter(
                        "hammer_ops_total",
                        "ops",
                        &[("kind", if (i / 64) % 2 == 0 { "a" } else { "b" })],
                    );
                }
                gauge.sub(1);
                i = i.wrapping_add(w + 1);
            }
        }));
    }

    // Scrape from several threads at once; each checks structure and
    // per-thread counter monotonicity across its own renders.
    let mut scrapers = Vec::new();
    for _ in 0..3 {
        let registry = Arc::clone(&registry);
        scrapers.push(thread::spawn(move || {
            let mut last_ops = 0.0f64;
            let mut last_count = 0.0f64;
            for _ in 0..200 {
                let text = registry.render_prometheus();
                let samples = check_render(&text);
                let ops = samples
                    .iter()
                    .find(|(s, _)| s == "hammer_ops_total{kind=\"write\"}")
                    .map(|&(_, v)| v)
                    .expect("write counter present");
                assert!(ops >= last_ops, "counter went backwards: {ops} < {last_ops}");
                last_ops = ops;
                let count = samples
                    .iter()
                    .find(|(s, _)| s == "hammer_latency_us_count{cmd=\"X\"}")
                    .map(|&(_, v)| v)
                    .expect("histogram count present");
                assert!(count >= last_count, "histogram count went backwards");
                last_count = count;
                // Histogram internal coherence: the +Inf bucket and the
                // count are read moments apart under relaxed increments,
                // so they may skew by the writes in flight between the two
                // loads — but never by a torn/garbage margin.
                let inf_bucket: f64 = samples
                    .iter()
                    .filter(|(s, _)| s.starts_with("hammer_latency_us_bucket{"))
                    .filter(|(s, _)| s.contains("le=\"+Inf\""))
                    .map(|&(_, v)| v)
                    .sum();
                assert!(
                    (inf_bucket - count).abs() <= 4096.0,
                    "+Inf bucket {inf_bucket} vs count {count}: torn histogram"
                );
            }
            last_ops
        }));
    }

    let finals: Vec<f64> = scrapers.into_iter().map(|h| h.join().unwrap()).collect();
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    // Writers really ran (the test exercised contention, not an idle loop).
    assert!(counter.get() > 0);
    assert!(finals.iter().all(|&v| v <= counter.get() as f64));

    // Quiesced: one final render agrees exactly with the instruments.
    let samples = check_render(&registry.render_prometheus());
    let ops = samples
        .iter()
        .find(|(s, _)| s == "hammer_ops_total{kind=\"write\"}")
        .unwrap()
        .1;
    assert_eq!(ops, counter.get() as f64);
    let ext = samples
        .iter()
        .find(|(s, _)| s.starts_with("hammer_external_total"))
        .unwrap()
        .1;
    assert_eq!(ext, external.load(Ordering::Relaxed) as f64);
    // The callback-backed counter announces itself as a counter family.
    let text = registry.render_prometheus();
    assert!(
        text.contains("# TYPE hammer_external_total counter"),
        "{text}"
    );
}
