//! Property tests for the Prometheus text renderer: whatever samples a
//! histogram absorbs and whatever label values a family carries, the
//! rendered exposition must (a) parse line-by-line as the text format,
//! (b) have monotonically non-decreasing cumulative `_bucket` counts, and
//! (c) end each histogram in a `+Inf` bucket equal to its `_count`.

use proptest::prelude::*;

use epfis_obs::Registry;

/// Minimal line-level parser for the subset of the exposition format the
/// renderer emits. Returns `(metric_with_labels, value)` for sample lines.
fn parse_sample_line(line: &str) -> (String, f64) {
    let (name_part, value_part) = line
        .rsplit_once(' ')
        .unwrap_or_else(|| panic!("no value separator in {line:?}"));
    assert!(!name_part.is_empty(), "empty metric in {line:?}");
    let first = name_part.chars().next().unwrap();
    assert!(
        first.is_ascii_alphabetic() || first == '_',
        "bad metric start in {line:?}"
    );
    if let Some(open) = name_part.find('{') {
        assert!(name_part.ends_with('}'), "unbalanced labels in {line:?}");
        let labels = &name_part[open + 1..name_part.len() - 1];
        // Label list: key="value" pairs separated by commas, values with
        // backslash escapes. Walk it with a tiny state machine.
        let mut chars = labels.chars().peekable();
        while chars.peek().is_some() {
            let key: String = chars.by_ref().take_while(|&c| c != '=').collect();
            assert!(!key.is_empty(), "empty label key in {line:?}");
            assert_eq!(
                chars.next(),
                Some('"'),
                "label value not quoted in {line:?}"
            );
            let mut closed = false;
            while let Some(c) = chars.next() {
                match c {
                    '\\' => {
                        let escaped = chars.next().expect("dangling escape");
                        assert!(
                            matches!(escaped, '\\' | '"' | 'n'),
                            "bad escape \\{escaped} in {line:?}"
                        );
                    }
                    '"' => {
                        closed = true;
                        break;
                    }
                    _ => {}
                }
            }
            assert!(closed, "unterminated label value in {line:?}");
            if let Some(&c) = chars.peek() {
                assert_eq!(c, ',', "bad label separator in {line:?}");
                chars.next();
            }
        }
    }
    let value = match value_part {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse()
            .unwrap_or_else(|_| panic!("bad value in {line:?}")),
    };
    (name_part.to_string(), value)
}

proptest! {
    #[test]
    fn renderer_emits_parseable_monotone_histograms(
        samples in prop::collection::vec(any::<u64>(), 0..200),
        small in prop::collection::vec(any::<u8>(), 0..50),
        label in prop::collection::vec(any::<u8>(), 0..12),
    ) {
        let registry = Registry::new();
        // A label value exercising escaping (arbitrary bytes → lossy utf8).
        let label_value = String::from_utf8_lossy(&label).into_owned();
        let hist = registry.histogram(
            "epfis_prop_us",
            "property-test histogram",
            &[("case", label_value.as_str())],
        );
        for v in &samples {
            hist.record(*v);
        }
        for v in &small {
            hist.record(*v as u64);
        }
        let counter = registry.counter("epfis_prop_total", "events", &[]);
        counter.add(samples.len() as u64);
        registry.gauge("epfis_prop_active", "gauge", &[]).set(-3);

        let text = registry.render_prometheus();
        let total = (samples.len() + small.len()) as u64;

        let mut bucket_values: Vec<f64> = Vec::new();
        let mut inf_bucket = None;
        let mut count_value = None;
        let mut help_seen = 0;
        let mut type_seen = 0;
        for line in text.lines() {
            prop_assert!(!line.is_empty(), "blank line in exposition");
            if let Some(rest) = line.strip_prefix("# ") {
                prop_assert!(
                    rest.starts_with("HELP ") || rest.starts_with("TYPE "),
                    "bad comment line {line:?}"
                );
                help_seen += usize::from(rest.starts_with("HELP "));
                type_seen += usize::from(rest.starts_with("TYPE "));
                continue;
            }
            let (metric, value) = parse_sample_line(line);
            if metric.starts_with("epfis_prop_us_bucket") {
                bucket_values.push(value);
                if metric.contains("le=\"+Inf\"") {
                    inf_bucket = Some(value);
                }
            } else if metric.starts_with("epfis_prop_us_count") {
                count_value = Some(value);
            }
        }
        prop_assert_eq!(help_seen, 3, "one HELP per family");
        prop_assert_eq!(type_seen, 3, "one TYPE per family");

        // Cumulative buckets never decrease…
        for pair in bucket_values.windows(2) {
            prop_assert!(pair[1] >= pair[0], "bucket counts decreased: {:?}", pair);
        }
        // …the +Inf bucket exists, equals _count, and equals the sample total.
        let inf = inf_bucket.expect("+Inf bucket missing");
        let count = count_value.expect("_count missing");
        prop_assert_eq!(inf, count);
        prop_assert_eq!(count, total as f64);
    }
}
