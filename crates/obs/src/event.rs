//! Structured events: a level, a target, a name, and key=value fields.
//!
//! An [`Event`] is the unit every sink consumes. It is deliberately plain
//! data — building one allocates only the field vector — so the hot-path
//! cost of an *enabled* event is a handful of pushes plus one clock read,
//! and the cost of a *disabled* event is a single relaxed atomic load in
//! the logger (the builder never materializes).
//!
//! Two renderings are defined here and shared by all sinks:
//!
//! * [`Event::render_human`] — one space-separated line,
//!   `<unix_secs.micros> LEVEL target name key=value ...`, string values
//!   quoted only when they contain whitespace or quotes;
//! * [`Event::render_json`] — one JSON object per line with fixed keys
//!   `ts_us`, `level`, `target`, `event` and a nested `fields` object.
//!   Non-finite floats are encoded as strings (`"NaN"`, `"inf"`, `"-inf"`)
//!   because JSON has no literal for them.

use std::fmt::Write as _;
use std::time::{SystemTime, UNIX_EPOCH};

/// Severity of an event, ordered from most to least verbose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Per-operation detail (e.g. one ingest batch); high volume.
    Trace = 0,
    /// Per-connection / per-request detail.
    Debug = 1,
    /// Lifecycle milestones: startup, commits, shutdown.
    Info = 2,
    /// Unexpected but handled conditions (limit rejections, sheds).
    Warn = 3,
    /// Failures the server could not absorb silently.
    Error = 4,
}

impl Level {
    /// Upper-case fixed-width name, as printed by the human format.
    pub fn name(self) -> &'static str {
        match self {
            Level::Trace => "TRACE",
            Level::Debug => "DEBUG",
            Level::Info => "INFO",
            Level::Warn => "WARN",
            Level::Error => "ERROR",
        }
    }

    /// Lower-case name, as encoded in the JSON format.
    pub fn name_lower(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a log-level *filter*: one of the five level names or
    /// `off`/`none` (→ `None`, meaning nothing is logged). Case-insensitive.
    pub fn parse_filter(s: &str) -> Result<Option<Level>, String> {
        match s.to_ascii_lowercase().as_str() {
            "trace" => Ok(Some(Level::Trace)),
            "debug" => Ok(Some(Level::Debug)),
            "info" => Ok(Some(Level::Info)),
            "warn" | "warning" => Ok(Some(Level::Warn)),
            "error" => Ok(Some(Level::Error)),
            "off" | "none" => Ok(None),
            other => Err(format!(
                "unknown log level {other:?} (expected trace|debug|info|warn|error|off)"
            )),
        }
    }
}

/// A field value. Converted from common primitives via `From`, so call
/// sites read `.field("refs", n)`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, byte totals, microseconds).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (estimates, ratios).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form text (names, peer addresses, error messages).
    Str(String),
}

macro_rules! value_from {
    ($($t:ty => $v:ident as $cast:ty),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::$v(v as $cast)
            }
        }
    )*};
}
value_from!(u64 => U64 as u64, u32 => U64 as u64, u16 => U64 as u64, usize => U64 as u64,
            i64 => I64 as i64, i32 => I64 as i64, f64 => F64 as f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// One structured event, ready for any sink.
#[derive(Debug, Clone)]
pub struct Event {
    /// Severity.
    pub level: Level,
    /// Subsystem that emitted the event (e.g. `"server"`, `"catalog"`).
    pub target: &'static str,
    /// Event name within the target (e.g. `"connection_opened"`).
    pub name: &'static str,
    /// Wall-clock timestamp, microseconds since the unix epoch.
    pub unix_micros: u64,
    /// Ordered key=value payload. Keys are static so field construction
    /// never allocates for the key side.
    pub fields: Vec<(&'static str, Value)>,
}

/// Current wall-clock time in microseconds since the unix epoch.
pub fn now_unix_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

impl Event {
    /// Renders the single-line human format (no trailing newline).
    pub fn render_human(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 16);
        let secs = self.unix_micros / 1_000_000;
        let micros = self.unix_micros % 1_000_000;
        let _ = write!(
            out,
            "{secs}.{micros:06} {:5} {} {}",
            self.level.name(),
            self.target,
            self.name
        );
        for (key, value) in &self.fields {
            out.push(' ');
            out.push_str(key);
            out.push('=');
            render_value_human(&mut out, value);
        }
        out
    }

    /// Renders the single-line JSON format (no trailing newline).
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(96 + self.fields.len() * 24);
        let _ = write!(
            out,
            "{{\"ts_us\":{},\"level\":\"{}\",\"target\":",
            self.unix_micros,
            self.level.name_lower()
        );
        push_json_string(&mut out, self.target);
        out.push_str(",\"event\":");
        push_json_string(&mut out, self.name);
        out.push_str(",\"fields\":{");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, key);
            out.push(':');
            render_value_json(&mut out, value);
        }
        out.push_str("}}");
        out
    }
}

fn render_value_human(out: &mut String, value: &Value) {
    match value {
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Str(s) => {
            if s.is_empty() || s.contains(|c: char| c.is_whitespace() || c == '"' || c == '=') {
                let _ = write!(out, "{s:?}");
            } else {
                out.push_str(s);
            }
        }
    }
}

fn render_value_json(out: &mut String, value: &Value) {
    match value {
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) if v.is_finite() => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => {
            // JSON has no NaN/Infinity literals; encode as a string.
            if v.is_nan() {
                out.push_str("\"NaN\"");
            } else if *v > 0.0 {
                out.push_str("\"inf\"");
            } else {
                out.push_str("\"-inf\"");
            }
        }
        Value::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Str(s) => push_json_string(out, s),
    }
}

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event {
            level: Level::Info,
            target: "server",
            name: "connection_opened",
            unix_micros: 1_700_000_000_123_456,
            fields: vec![
                ("peer", Value::from("127.0.0.1:9")),
                ("refs", Value::from(42u64)),
                ("ratio", Value::from(0.5f64)),
                ("ok", Value::from(true)),
                ("msg", Value::from("two words")),
            ],
        }
    }

    #[test]
    fn human_line_is_stable() {
        assert_eq!(
            sample().render_human(),
            "1700000000.123456 INFO  server connection_opened \
             peer=127.0.0.1:9 refs=42 ratio=0.5 ok=true msg=\"two words\""
        );
    }

    #[test]
    fn json_line_is_stable() {
        assert_eq!(
            sample().render_json(),
            "{\"ts_us\":1700000000123456,\"level\":\"info\",\"target\":\"server\",\
             \"event\":\"connection_opened\",\"fields\":{\"peer\":\"127.0.0.1:9\",\
             \"refs\":42,\"ratio\":0.5,\"ok\":true,\"msg\":\"two words\"}}"
        );
    }

    #[test]
    fn json_escapes_controls_and_nonfinite() {
        let ev = Event {
            level: Level::Error,
            target: "t",
            name: "n",
            unix_micros: 0,
            fields: vec![
                ("s", Value::from("a\"b\\c\nd\u{1}")),
                ("nan", Value::from(f64::NAN)),
                ("inf", Value::from(f64::INFINITY)),
                ("ninf", Value::from(f64::NEG_INFINITY)),
            ],
        };
        let json = ev.render_json();
        assert!(json.contains("\"s\":\"a\\\"b\\\\c\\nd\\u0001\""), "{json}");
        assert!(json.contains("\"nan\":\"NaN\""));
        assert!(json.contains("\"inf\":\"inf\""));
        assert!(json.contains("\"ninf\":\"-inf\""));
    }

    #[test]
    fn level_filter_parses() {
        assert_eq!(Level::parse_filter("INFO"), Ok(Some(Level::Info)));
        assert_eq!(Level::parse_filter("off"), Ok(None));
        assert!(Level::parse_filter("loud").is_err());
        assert!(Level::Trace < Level::Error);
    }
}
