//! The [`Logger`]: level filtering, fan-out to sinks, and span timing.
//!
//! Design constraints, in order:
//!
//! 1. A *disabled* event must cost one relaxed atomic load and nothing
//!    else — the server calls `logger.event(...)` on per-request paths.
//! 2. The logger is shared (`Arc<Logger>`) across worker threads; all
//!    methods take `&self`.
//! 3. Every enabled event lands in the in-memory [`RingBuffer`] (so the
//!    last N events are queryable even with no sink configured) and is
//!    then offered to each configured [`Sink`].
//!
//! Span timers are RAII: [`Logger::span`] starts a monotonic clock and the
//! returned [`Span`] emits a single event on drop with an appended
//! `elapsed_us` field. Dropping a span on a disabled logger emits nothing.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::event::{now_unix_micros, Event, Level, Value};
use crate::ring::RingBuffer;
use crate::sink::Sink;

const LEVEL_OFF: u8 = u8::MAX;

/// Default number of events retained by the logger's ring buffer.
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// A shared, leveled, multi-sink structured logger.
pub struct Logger {
    threshold: AtomicU8,
    sinks: Vec<Box<dyn Sink>>,
    ring: RingBuffer,
}

impl std::fmt::Debug for Logger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Logger")
            .field("level", &self.level())
            .field("sinks", &self.sinks.len())
            .field("ring_capacity", &self.ring.capacity())
            .finish()
    }
}

impl Logger {
    /// A logger at `level` (or entirely off when `None`) with no sinks and
    /// the default ring capacity. Add sinks with [`Logger::with_sink`].
    pub fn new(level: Option<Level>) -> Logger {
        Logger {
            threshold: AtomicU8::new(level.map_or(LEVEL_OFF, |l| l as u8)),
            sinks: Vec::new(),
            ring: RingBuffer::new(DEFAULT_RING_CAPACITY),
        }
    }

    /// A logger that never emits anything; the zero-cost default.
    pub fn disabled() -> Logger {
        let mut logger = Logger::new(None);
        logger.ring = RingBuffer::new(0);
        logger
    }

    /// Adds a sink (builder style).
    pub fn with_sink(mut self, sink: Box<dyn Sink>) -> Logger {
        self.sinks.push(sink);
        self
    }

    /// Replaces the ring buffer capacity (builder style).
    pub fn with_ring_capacity(mut self, capacity: usize) -> Logger {
        self.ring = RingBuffer::new(capacity);
        self
    }

    /// Current level filter (`None` = off).
    pub fn level(&self) -> Option<Level> {
        match self.threshold.load(Ordering::Relaxed) {
            0 => Some(Level::Trace),
            1 => Some(Level::Debug),
            2 => Some(Level::Info),
            3 => Some(Level::Warn),
            4 => Some(Level::Error),
            _ => None,
        }
    }

    /// Changes the level filter at runtime.
    pub fn set_level(&self, level: Option<Level>) {
        self.threshold
            .store(level.map_or(LEVEL_OFF, |l| l as u8), Ordering::Relaxed);
    }

    /// Whether an event at `level` would be emitted. One relaxed load.
    #[inline]
    pub fn enabled(&self, level: Level) -> bool {
        (level as u8) >= self.threshold.load(Ordering::Relaxed)
    }

    /// Starts building an event. When the level is filtered out the
    /// builder is inert: `.field(...)` calls do no work and `.emit()` is a
    /// no-op, so call sites need no `if enabled` guard.
    #[inline]
    pub fn event(
        &self,
        level: Level,
        target: &'static str,
        name: &'static str,
    ) -> EventBuilder<'_> {
        if self.enabled(level) {
            EventBuilder {
                logger: Some(self),
                level,
                target,
                name,
                fields: Vec::new(),
            }
        } else {
            EventBuilder {
                logger: None,
                level,
                target,
                name,
                fields: Vec::new(),
            }
        }
    }

    /// Starts an RAII span timer; the returned [`Span`] emits one event on
    /// drop with an `elapsed_us` field appended after any span fields.
    #[inline]
    pub fn span(&self, level: Level, target: &'static str, name: &'static str) -> Span<'_> {
        Span {
            logger: self.enabled(level).then_some(self),
            level,
            target,
            name,
            fields: Vec::new(),
            start: Instant::now(),
        }
    }

    /// The most recent `max` retained events, oldest first.
    pub fn recent(&self, max: usize) -> Vec<Arc<Event>> {
        self.ring.recent(max)
    }

    /// Total events dropped by the ring under contention.
    pub fn ring_dropped(&self) -> u64 {
        self.ring.dropped()
    }

    fn dispatch(
        &self,
        level: Level,
        target: &'static str,
        name: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) {
        let event = Arc::new(Event {
            level,
            target,
            name,
            unix_micros: now_unix_micros(),
            fields,
        });
        self.ring.push(Arc::clone(&event));
        for sink in &self.sinks {
            sink.emit(&event);
        }
    }
}

/// Builder returned by [`Logger::event`]; collect fields, then [`EventBuilder::emit`].
#[must_use = "an event builder does nothing until .emit() is called"]
pub struct EventBuilder<'a> {
    logger: Option<&'a Logger>,
    level: Level,
    target: &'static str,
    name: &'static str,
    fields: Vec<(&'static str, Value)>,
}

impl EventBuilder<'_> {
    /// Appends a key=value field. Free when the event is filtered out.
    #[inline]
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        if self.logger.is_some() {
            self.fields.push((key, value.into()));
        }
        self
    }

    /// Emits the event to the ring and all sinks.
    #[inline]
    pub fn emit(self) {
        if let Some(logger) = self.logger {
            logger.dispatch(self.level, self.target, self.name, self.fields);
        }
    }
}

/// An RAII span timer; see [`Logger::span`].
pub struct Span<'a> {
    logger: Option<&'a Logger>,
    level: Level,
    target: &'static str,
    name: &'static str,
    fields: Vec<(&'static str, Value)>,
    start: Instant,
}

impl Span<'_> {
    /// Appends a field to the event the span will emit (builder style).
    #[inline]
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.add_field(key, value);
        self
    }

    /// Appends a field in place (for facts learned mid-span).
    #[inline]
    pub fn add_field(&mut self, key: &'static str, value: impl Into<Value>) {
        if self.logger.is_some() {
            self.fields.push((key, value.into()));
        }
    }

    /// Elapsed time since the span started.
    pub fn elapsed_micros(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(logger) = self.logger {
            let mut fields = std::mem::take(&mut self.fields);
            fields.push(("elapsed_us", Value::U64(self.elapsed_micros())));
            logger.dispatch(self.level, self.target, self.name, fields);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_filter_gates_emission() {
        let logger = Logger::new(Some(Level::Info));
        logger
            .event(Level::Debug, "t", "hidden")
            .field("x", 1u64)
            .emit();
        logger
            .event(Level::Warn, "t", "kept")
            .field("x", 2u64)
            .emit();
        let recent = logger.recent(8);
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].name, "kept");
        assert!(logger.enabled(Level::Error));
        assert!(!logger.enabled(Level::Trace));
    }

    #[test]
    fn disabled_logger_emits_nothing() {
        let logger = Logger::disabled();
        logger.event(Level::Error, "t", "e").emit();
        drop(logger.span(Level::Error, "t", "s"));
        assert!(logger.recent(8).is_empty());
        assert_eq!(logger.level(), None);
    }

    #[test]
    fn set_level_applies_at_runtime() {
        let logger = Logger::new(None);
        logger.event(Level::Error, "t", "dropped").emit();
        logger.set_level(Some(Level::Trace));
        logger.event(Level::Trace, "t", "kept").emit();
        assert_eq!(logger.recent(8).len(), 1);
    }

    #[test]
    fn span_appends_elapsed_us() {
        let logger = Logger::new(Some(Level::Trace));
        {
            let mut span = logger.span(Level::Info, "t", "work").field("k", "v");
            span.add_field("n", 3u64);
        }
        let recent = logger.recent(8);
        assert_eq!(recent.len(), 1);
        let ev = &recent[0];
        assert_eq!(ev.name, "work");
        assert_eq!(ev.fields[0], ("k", Value::Str("v".into())));
        assert_eq!(ev.fields[1], ("n", Value::U64(3)));
        assert_eq!(ev.fields[2].0, "elapsed_us");
    }
}
