//! The metric [`Registry`]: named families of instruments rendered in the
//! Prometheus text exposition format.
//!
//! A *family* is a metric name plus help text and a kind; each family owns
//! one or more *series* distinguished by label sets. Registration is
//! get-or-create: registering the same name + labels twice returns the
//! same `Arc`-shared instrument, so independent subsystems can share a
//! counter without coordinating. Registering a name under two different
//! kinds panics — metric identity is static, so that is a programming
//! error, caught loudly.
//!
//! Rendering contract (pinned by a property test):
//!
//! * every family emits `# HELP` and `# TYPE` exactly once, in name order;
//! * histograms expose cumulative `_bucket{le="..."}` series whose counts
//!   are monotonically non-decreasing, ending in `le="+Inf"` equal to the
//!   `_count` series, plus `_sum`;
//! * label values are escaped (`\\`, `\"`, `\n`), names are validated at
//!   registration.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram, BUCKETS};

/// What a family measures, as declared to Prometheus by `# TYPE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter (`_total` naming convention).
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Log2 histogram, rendered as `_bucket`/`_sum`/`_count`.
    Histogram,
}

impl MetricKind {
    fn type_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

type Labels = Vec<(String, String)>;

enum Instrument {
    Counter(Arc<Counter>),
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    Gauge(Arc<Gauge>),
    GaugeFn(Box<dyn Fn() -> f64 + Send + Sync>),
    Histogram(Arc<Histogram>),
}

struct Series {
    labels: Labels,
    instrument: Instrument,
}

struct Family {
    help: String,
    kind: MetricKind,
    series: Vec<Series>,
}

/// A collection of metric families, renderable as Prometheus text.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.families.lock().map(|g| g.len()).unwrap_or(0);
        f.debug_struct("Registry").field("families", &n).finish()
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn owned_labels(labels: &[(&str, &str)]) -> Labels {
    labels
        .iter()
        .map(|(k, v)| {
            assert!(valid_name(k), "invalid label name {k:?}");
            (k.to_string(), v.to_string())
        })
        .collect()
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-global registry, for instruments that belong to shared
    /// subsystems (buffer pool, stack analyzer) rather than one server
    /// instance. See [`crate::wellknown`].
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Option<&'static str> {
        // Returns None; the real work is the side effect. Kept private —
        // public entry points below return the concrete instrument.
        assert!(valid_name(name), "invalid metric name {name:?}");
        let labels = owned_labels(labels);
        let mut families = self.families.lock().expect("registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: Vec::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name:?} registered as {:?} and {kind:?}",
            family.kind
        );
        if !family.series.iter().any(|s| s.labels == labels) {
            family.series.push(Series {
                labels,
                instrument: make(),
            });
        }
        None
    }

    fn find<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        pick: impl Fn(&Instrument) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let labels = owned_labels(labels);
        let families = self.families.lock().expect("registry poisoned");
        let family = &families[name];
        let series = family
            .series
            .iter()
            .find(|s| s.labels == labels)
            .expect("series registered above");
        pick(&series.instrument).expect("kind checked above")
    }

    /// Registers (or finds) a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.register(name, help, MetricKind::Counter, labels, || {
            Instrument::Counter(Arc::new(Counter::new()))
        });
        self.find(name, labels, |i| match i {
            Instrument::Counter(c) => Some(Arc::clone(c)),
            _ => None,
        })
    }

    /// Registers (or finds) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.register(name, help, MetricKind::Gauge, labels, || {
            Instrument::Gauge(Arc::new(Gauge::new()))
        });
        self.find(name, labels, |i| match i {
            Instrument::Gauge(g) => Some(Arc::clone(g)),
            _ => None,
        })
    }

    /// Registers (or finds) a histogram series.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.register(name, help, MetricKind::Histogram, labels, || {
            Instrument::Histogram(Arc::new(Histogram::new()))
        });
        self.find(name, labels, |i| match i {
            Instrument::Histogram(h) => Some(Arc::clone(h)),
            _ => None,
        })
    }

    /// Registers a computed gauge: `f` is evaluated at render time. Useful
    /// for values owned elsewhere (catalog epoch, uptime, active
    /// connections). Re-registering the same name + labels replaces `f`.
    pub fn gauge_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let labels = owned_labels(labels);
        let mut families = self.families.lock().expect("registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind: MetricKind::Gauge,
            series: Vec::new(),
        });
        assert!(
            family.kind == MetricKind::Gauge,
            "metric {name:?} registered as {:?} and Gauge",
            family.kind
        );
        let instrument = Instrument::GaugeFn(Box::new(f));
        if let Some(series) = family.series.iter_mut().find(|s| s.labels == labels) {
            series.instrument = instrument;
        } else {
            family.series.push(Series { labels, instrument });
        }
    }

    /// Registers a computed counter: `f` is evaluated at render time.
    /// For monotonic totals owned elsewhere (the logger's event-ring drop
    /// count, a tracker's observation count) that must still export with
    /// `# TYPE counter`. `f` must be monotonically non-decreasing.
    /// Re-registering the same name + labels replaces `f`.
    pub fn counter_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let labels = owned_labels(labels);
        let mut families = self.families.lock().expect("registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind: MetricKind::Counter,
            series: Vec::new(),
        });
        assert!(
            family.kind == MetricKind::Counter,
            "metric {name:?} registered as {:?} and Counter",
            family.kind
        );
        let instrument = Instrument::CounterFn(Box::new(f));
        if let Some(series) = family.series.iter_mut().find(|s| s.labels == labels) {
            series.instrument = instrument;
        } else {
            family.series.push(Series { labels, instrument });
        }
    }

    /// Renders every family in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        self.render_prometheus_into(&mut out);
        out
    }

    /// Appends the rendering to `out` (lets callers concatenate the global
    /// registry after a per-server one into a single `/metrics` body).
    pub fn render_prometheus_into(&self, out: &mut String) {
        let families = self.families.lock().expect("registry poisoned");
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.type_name());
            for series in &family.series {
                match &series.instrument {
                    Instrument::Counter(c) => {
                        render_line(out, name, &series.labels, None, &c.get().to_string());
                    }
                    Instrument::CounterFn(f) => {
                        render_line(out, name, &series.labels, None, &f().to_string());
                    }
                    Instrument::Gauge(g) => {
                        render_line(out, name, &series.labels, None, &g.get().to_string());
                    }
                    Instrument::GaugeFn(f) => {
                        render_line(out, name, &series.labels, None, &fmt_f64(f()));
                    }
                    Instrument::Histogram(h) => render_histogram(out, name, &series.labels, h),
                }
            }
        }
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_line(
    out: &mut String,
    name: &str,
    labels: &Labels,
    extra: Option<(&str, &str)>,
    value: &str,
) {
    out.push_str(name);
    if !labels.is_empty() || extra.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
        }
        if let Some((k, v)) = extra {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

fn render_histogram(out: &mut String, name: &str, labels: &Labels, h: &Histogram) {
    let counts = h.bucket_counts();
    let mut cumulative = 0u64;
    let bucket_name = format!("{name}_bucket");
    for (i, c) in counts.iter().enumerate().take(BUCKETS) {
        cumulative += c;
        let le = match Histogram::bucket_le(i) {
            Some(le) => le.to_string(),
            None => "+Inf".to_string(),
        };
        render_line(
            out,
            &bucket_name,
            labels,
            Some(("le", &le)),
            &cumulative.to_string(),
        );
    }
    render_line(
        out,
        &format!("{name}_sum"),
        labels,
        None,
        &h.sum().to_string(),
    );
    render_line(
        out,
        &format!("{name}_count"),
        labels,
        None,
        &h.count().to_string(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_series_are_shared_by_name_and_labels() {
        let r = Registry::new();
        let a = r.counter("epfis_test_total", "help", &[("command", "PING")]);
        let b = r.counter("epfis_test_total", "help", &[("command", "PING")]);
        let c = r.counter("epfis_test_total", "help", &[("command", "SHOW")]);
        a.inc();
        b.inc();
        c.add(5);
        assert_eq!(a.get(), 2);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP epfis_test_total help"));
        assert!(text.contains("# TYPE epfis_test_total counter"));
        assert!(text.contains("epfis_test_total{command=\"PING\"} 2"));
        assert!(text.contains("epfis_test_total{command=\"SHOW\"} 5"));
    }

    #[test]
    fn gauge_fn_is_evaluated_at_render_time() {
        let r = Registry::new();
        let shared = Arc::new(Counter::new());
        let inner = Arc::clone(&shared);
        r.gauge_fn("epfis_test_value", "computed", &[], move || {
            inner.get() as f64 / 2.0
        });
        shared.add(5);
        assert!(r.render_prometheus().contains("epfis_test_value 2.5"));
        shared.add(1);
        assert!(r.render_prometheus().contains("epfis_test_value 3"));
    }

    #[test]
    fn counter_fn_is_evaluated_at_render_time_as_counter_kind() {
        let r = Registry::new();
        let shared = Arc::new(Counter::new());
        let inner = Arc::clone(&shared);
        r.counter_fn("epfis_test_dropped_total", "computed", &[], move || {
            inner.get()
        });
        shared.add(5);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE epfis_test_dropped_total counter"));
        assert!(text.contains("epfis_test_dropped_total 5"));
        shared.add(2);
        assert!(r.render_prometheus().contains("epfis_test_dropped_total 7"));
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn counter_fn_kind_conflict_panics() {
        let r = Registry::new();
        r.gauge("epfis_test_value", "h", &[]);
        r.counter_fn("epfis_test_value", "h", &[], || 0);
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let r = Registry::new();
        let h = r.histogram("epfis_test_us", "latency", &[]);
        h.record(0); // bucket 0, le 0
        h.record(1); // bucket 1, le 1
        h.record(3); // bucket 2, le 3
        h.record(1_000_000); // bucket 20
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE epfis_test_us histogram"));
        assert!(text.contains("epfis_test_us_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("epfis_test_us_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("epfis_test_us_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("epfis_test_us_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("epfis_test_us_sum 1000004\n"));
        assert!(text.contains("epfis_test_us_count 4\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("epfis_test_total", "h", &[("name", "a\"b\\c\nd")]);
        let text = r.render_prometheus();
        assert!(text.contains("name=\"a\\\"b\\\\c\\nd\""), "{text}");
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        r.counter("epfis_test_total", "h", &[]);
        r.gauge("epfis_test_total", "h", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        Registry::new().counter("0bad name", "h", &[]);
    }
}
