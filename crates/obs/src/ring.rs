//! A bounded in-memory buffer of the most recent events, queryable at
//! runtime (the server exposes it over HTTP as `/events`).
//!
//! Writers never wait: a slot index is claimed with one atomic
//! `fetch_add`, and the slot itself is taken with `try_lock` — if a reader
//! (or a stalled writer) holds that one slot, the event is dropped rather
//! than blocking the serving path. Readers snapshot whatever slots they
//! can take without waiting and order them by sequence number. The
//! structure therefore trades perfect retention under contention for a
//! hard guarantee that observability never stalls the observed system.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::Event;

/// A slot holds the sequence number that claimed it plus the event.
type Slot = Mutex<Option<(u64, Arc<Event>)>>;

/// Fixed-capacity ring of the last N events.
pub struct RingBuffer {
    slots: Box<[Slot]>,
    head: AtomicU64,
    dropped: AtomicU64,
}

impl RingBuffer {
    /// Creates a ring holding at most `capacity` events. A capacity of 0
    /// disables retention (pushes become no-ops).
    pub fn new(capacity: usize) -> RingBuffer {
        let slots = (0..capacity).map(|_| Mutex::new(None)).collect();
        RingBuffer {
            slots,
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever pushed (including any dropped under contention).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events dropped because their slot was contended at push time.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Stores an event, never blocking. Under slot contention the event is
    /// counted in [`RingBuffer::dropped`] instead of being retained.
    pub fn push(&self, event: Arc<Event>) {
        if self.slots.is_empty() {
            return;
        }
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        match slot.try_lock() {
            Ok(mut guard) => *guard = Some((seq, event)),
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Returns up to `max` of the most recent events, oldest first.
    /// Slots that are mid-write are skipped rather than waited on.
    pub fn recent(&self, max: usize) -> Vec<Arc<Event>> {
        let mut entries: Vec<(u64, Arc<Event>)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            if let Ok(guard) = slot.try_lock() {
                if let Some((seq, ev)) = guard.as_ref() {
                    entries.push((*seq, Arc::clone(ev)));
                }
            }
        }
        entries.sort_by_key(|(seq, _)| *seq);
        let skip = entries.len().saturating_sub(max);
        entries.into_iter().skip(skip).map(|(_, ev)| ev).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Level, Value};

    fn ev(i: u64) -> Arc<Event> {
        Arc::new(Event {
            level: Level::Debug,
            target: "t",
            name: "n",
            unix_micros: i,
            fields: vec![("i", Value::from(i))],
        })
    }

    #[test]
    fn keeps_last_n_in_order() {
        let ring = RingBuffer::new(4);
        for i in 0..10 {
            ring.push(ev(i));
        }
        let recent: Vec<u64> = ring.recent(16).iter().map(|e| e.unix_micros).collect();
        assert_eq!(recent, vec![6, 7, 8, 9]);
        let recent: Vec<u64> = ring.recent(2).iter().map(|e| e.unix_micros).collect();
        assert_eq!(recent, vec![8, 9]);
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn zero_capacity_is_a_noop() {
        let ring = RingBuffer::new(0);
        ring.push(ev(1));
        assert!(ring.recent(8).is_empty());
    }

    #[test]
    fn concurrent_pushes_retain_a_consistent_tail() {
        let ring = Arc::new(RingBuffer::new(64));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        ring.push(ev(t * 1000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.pushed(), 4000);
        let recent = ring.recent(64);
        assert!(recent.len() <= 64);
        // Retained + dropped accounts for every claimed slot sequence.
        assert!(ring.dropped() <= 4000);
    }
}
