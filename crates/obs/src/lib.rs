//! # epfis-obs — workspace-wide observability
//!
//! Std-only telemetry shared by every layer of the EPFIS reproduction:
//!
//! * **Structured events** ([`event`], [`logger`], [`sink`], [`ring`]):
//!   leveled `key=value` events and RAII span timers fan out to pluggable
//!   sinks — human-readable stderr lines, JSON lines appended to a file,
//!   and an always-on in-memory ring buffer of the last N events that the
//!   server exposes at runtime (`/events`). A disabled event costs one
//!   relaxed atomic load; an enabled one never blocks the emitting thread
//!   (the ring drops under contention rather than waiting).
//!
//! * **Metrics** ([`metrics`], [`registry`], [`wellknown`]): lock-free
//!   counters, gauges, and the log2 histogram generalized out of
//!   `epfis-server`'s private `STATS` implementation, organized into
//!   labeled families by a [`registry::Registry`] that renders the
//!   Prometheus text exposition format (cumulative `_bucket` series with
//!   exact `le` bounds, `_sum`, `_count`). Library subsystems that cannot
//!   know who is serving them (buffer pool, stack analyzer) publish into
//!   [`registry::Registry::global`] via [`wellknown`].
//!
//! * **Exposition** ([`http`]): a minimal GET-only HTTP/1.1 server that
//!   `epfis serve --metrics-addr` uses for `/metrics`, `/healthz`, and
//!   `/events`.
//!
//! The crate depends on `std` alone so any workspace member — including
//! `epfis-storage`, which is otherwise dependency-free — can afford it.

pub mod event;
pub mod http;
pub mod logger;
pub mod metrics;
pub mod registry;
pub mod ring;
pub mod sink;
pub mod wellknown;

pub use event::{Event, Level, Value};
pub use logger::{EventBuilder, Logger, Span};
pub use metrics::{Counter, Gauge, Histogram, BUCKETS};
pub use registry::{MetricKind, Registry};
pub use ring::RingBuffer;
pub use sink::{FileSink, LogFormat, Sink, StderrSink};
