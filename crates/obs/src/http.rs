//! A deliberately tiny HTTP/1.1 server for metrics exposition.
//!
//! Serves `GET` requests only, one connection at a time, `Connection:
//! close` on every response — exactly what a Prometheus scraper or a
//! `curl` probe needs and nothing more. Requests are read with a short
//! socket timeout and an 8 KiB header cap, so a stalled or hostile peer
//! cannot pin the exposition thread for long. Routing is delegated to a
//! caller-supplied handler keyed on the request path (query string
//! included), which keeps this module free of any knowledge about what is
//! being exposed.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Maximum bytes of request head (request line + headers) we will buffer.
const MAX_REQUEST_BYTES: usize = 8 * 1024;
/// Per-connection socket timeout for both reads and writes.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A response produced by the routing handler.
pub struct Response {
    /// HTTP status code (200, 404, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A 200 response with the given content type.
    pub fn ok(content_type: &'static str, body: String) -> Response {
        Response {
            status: 200,
            content_type,
            body,
        }
    }
}

/// Routing handler: maps a request path (with query string) to a response;
/// `None` becomes a 404.
pub type Handler = dyn Fn(&str) -> Option<Response> + Send + Sync;

/// A running exposition server; shuts down on drop.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves `handler` on a
    /// background thread until shutdown or drop.
    pub fn serve<A: ToSocketAddrs>(addr: A, handler: Arc<Handler>) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("epfis-obs-http".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if flag.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        handle_connection(stream, handler.as_ref());
                    }
                }
            })?;
        Ok(HttpServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(&mut self) {
        if self.handle.is_none() {
            return;
        }
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the listener so the blocking accept observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(mut stream: TcpStream, handler: &Handler) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let buf = read_request_head(&mut stream);
    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let response = if method != "GET" {
        Response {
            status: 405,
            content_type: "text/plain; charset=utf-8",
            body: "method not allowed\n".to_string(),
        }
    } else {
        handler(path).unwrap_or(Response {
            status: 404,
            content_type: "text/plain; charset=utf-8",
            body: "not found\n".to_string(),
        })
    };
    let reason = match response.status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Response",
    };
    let head = format!(
        "HTTP/1.1 {} {reason}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        response.content_type,
        response.body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(response.body.as_bytes());
    let _ = stream.flush();
}

/// Reads the request head until the end of the header block, the size cap,
/// EOF, or a timeout. `EINTR` is retried: a stray signal delivery is not a
/// peer hangup (a prior version of this loop treated any error as one and
/// served signal-interrupted scrapes a 405 from an empty request).
fn read_request_head<R: Read>(stream: &mut R) -> Vec<u8> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    while !contains_head_end(&buf) && buf.len() < MAX_REQUEST_BYTES {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    buf
}

fn contains_head_end(buf: &[u8]) -> bool {
    buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        let mut body = String::new();
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap() > 0 && line.trim() != "" {
            line.clear(); // skip headers
        }
        reader.read_to_string(&mut body).unwrap();
        (status, body)
    }

    #[test]
    fn routes_get_requests_and_404s() {
        let mut server = HttpServer::serve(
            "127.0.0.1:0",
            Arc::new(|path: &str| {
                (path == "/hello")
                    .then(|| Response::ok("text/plain; charset=utf-8", "world\n".into()))
            }),
        )
        .unwrap();
        let (status, body) = get(server.addr(), "/hello");
        assert_eq!((status, body.as_str()), (200, "world\n"));
        let (status, _) = get(server.addr(), "/missing");
        assert_eq!(status, 404);
        server.shutdown();
        server.shutdown(); // idempotent
    }

    #[test]
    fn interrupted_reads_are_retried_not_treated_as_hangup() {
        // A reader that fails with EINTR before every chunk, as a socket
        // read does when a signal lands mid-scrape.
        struct Interrupted<R> {
            inner: R,
            pending_interrupt: bool,
        }
        impl<R: Read> Read for Interrupted<R> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.pending_interrupt {
                    self.pending_interrupt = false;
                    return Err(std::io::Error::from(std::io::ErrorKind::Interrupted));
                }
                self.pending_interrupt = true;
                self.inner.read(buf)
            }
        }
        let request = b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
        let mut stream = Interrupted {
            inner: &request[..],
            pending_interrupt: true,
        };
        let head = read_request_head(&mut stream);
        assert_eq!(head, request, "EINTR must not truncate the request head");
    }

    #[test]
    fn rejects_non_get() {
        let server = HttpServer::serve(
            "127.0.0.1:0",
            Arc::new(|_: &str| Some(Response::ok("text/plain; charset=utf-8", "x".into()))),
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(stream, "POST / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        BufReader::new(stream).read_line(&mut response).unwrap();
        assert!(response.contains("405"), "{response}");
    }
}
