//! Atomic instruments: [`Counter`], [`Gauge`], and the log2 [`Histogram`].
//!
//! The histogram generalizes what used to be a private detail of
//! `epfis-server::metrics::CommandStats`: values land in power-of-two
//! buckets (bucket `i` holds values of bit length `i`, i.e.
//! `[2^(i-1), 2^i)`, with zero in bucket 0), so recording is a handful of
//! relaxed atomic increments and quantiles are read back as bucket upper
//! bounds — the HdrHistogram-style trade-off production servers make, not
//! per-request sample retention.
//!
//! All instruments are `Sync` and lock-free; they are shared via `Arc`
//! from the [`Registry`](crate::registry::Registry) that renders them.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of log2 histogram buckets: covers up to ~2^27 ≈ 1.3×10^8
/// (134 s when recording microseconds).
pub const BUCKETS: usize = 28;

/// A monotonically non-decreasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value (set/add/sub).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-shape log2 histogram of `u64` samples with count/sum/max.
#[derive(Debug, Default)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index a value lands in: its bit length, clamped to the
    /// last bucket (zero lands in bucket 0).
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// The *quantile* upper bound of bucket `i`: `2^i` (1 for bucket 0),
    /// i.e. the exclusive upper edge of the value range the bucket holds.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            1
        } else {
            1u64 << i
        }
    }

    /// The *Prometheus* `le` bound of bucket `i`: the largest value the
    /// bucket can hold, `2^i − 1`, making cumulative counts exact; `None`
    /// for the last bucket, which is unbounded (`+Inf`).
    pub fn bucket_le(i: usize) -> Option<u64> {
        if i + 1 >= BUCKETS {
            None
        } else {
            Some((1u64 << i) - 1)
        }
    }

    /// Records one sample: a few relaxed atomic RMWs, no locks.
    #[inline]
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Merges a locally pre-aggregated run of samples in one pass: three
    /// RMWs plus one per *touched* bucket, instead of four per sample —
    /// the hot-path escape hatch for callers that see many samples per
    /// wakeup (a pipelined request batch) and can sum them privately
    /// first. `buckets` pairs are `(index from [`Histogram::bucket_index`],
    /// samples)`; indices are clamped to the last bucket. No-op when
    /// `count` is 0.
    pub fn record_aggregated(&self, count: u64, sum: u64, max: u64, buckets: &[(usize, u64)]) {
        if count == 0 {
            return;
        }
        self.count.fetch_add(count, Ordering::Relaxed);
        self.sum.fetch_add(sum, Ordering::Relaxed);
        self.max.fetch_max(max, Ordering::Relaxed);
        for &(i, n) in buckets {
            if n > 0 {
                self.buckets[i.min(BUCKETS - 1)].fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wraps only after 2^64).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample (integer division; 0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// A point-in-time copy of the raw (non-cumulative) bucket counts.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (o, b) in out.iter_mut().zip(self.buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Approximate quantile (`q` clamped to `[0, 1]`): the upper bound of
    /// the histogram bucket containing rank `max(ceil(q·count), 1)`,
    /// clamped to the observed maximum. Returns 0 when empty.
    ///
    /// Edge semantics, pinned by tests: because the rank is floored at 1,
    /// `q = 0.0` returns the **smallest occupied bucket's upper bound**
    /// (the best available approximation of the minimum), and `q = 1.0`
    /// returns the observed maximum exactly (the last bucket's upper bound
    /// clamps to it).
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper_bound(i).min(self.max().max(1));
            }
        }
        self.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_aggregated_matches_per_sample_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let samples = [0u64, 1, 1, 7, 900, 900, 900, u64::MAX];
        for &s in &samples {
            a.record(s);
        }
        // The same samples, pre-aggregated the way a batch-local
        // accumulator would: count/sum/max plus touched-bucket pairs.
        let mut touched: Vec<(usize, u64)> = Vec::new();
        for &s in &samples {
            let i = Histogram::bucket_index(s);
            match touched.iter_mut().find(|(j, _)| *j == i) {
                Some((_, n)) => *n += 1,
                None => touched.push((i, 1)),
            }
        }
        let sum = samples.iter().fold(0u64, |acc, &s| acc.wrapping_add(s));
        b.record_aggregated(samples.len() as u64, sum, u64::MAX, &touched);
        assert_eq!(a.count(), b.count());
        assert_eq!(a.sum(), b.sum());
        assert_eq!(a.max(), b.max());
        assert_eq!(a.bucket_counts(), b.bucket_counts());
        // Empty batches are free and change nothing.
        b.record_aggregated(0, 123, 456, &[(0, 9)]);
        assert_eq!(a.bucket_counts(), b.bucket_counts());
        // Out-of-range indices clamp to the last bucket instead of
        // panicking (the caller's bucketing may outlive a BUCKETS change).
        b.record_aggregated(1, 0, 0, &[(BUCKETS + 5, 1)]);
        assert_eq!(b.bucket_counts()[BUCKETS - 1], a.bucket_counts()[BUCKETS - 1] + 1);
    }

    #[test]
    fn bucket_index_matches_bit_length() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn le_bounds_are_exact_bucket_maxima() {
        assert_eq!(Histogram::bucket_le(0), Some(0));
        assert_eq!(Histogram::bucket_le(1), Some(1));
        assert_eq!(Histogram::bucket_le(2), Some(3));
        assert_eq!(Histogram::bucket_le(3), Some(7));
        assert_eq!(Histogram::bucket_le(BUCKETS - 1), None);
        // Every value in bucket i is ≤ its le bound and > the previous one.
        for v in [0u64, 1, 2, 3, 4, 100, 1023, 1024] {
            let i = Histogram::bucket_index(v);
            if let Some(le) = Histogram::bucket_le(i) {
                assert!(v <= le, "{v} > le {le} of its bucket {i}");
            }
            if i > 0 {
                let prev = Histogram::bucket_le(i - 1).unwrap();
                assert!(v > prev, "{v} ≤ le {prev} of bucket {}", i - 1);
            }
        }
    }

    #[test]
    fn count_sum_max_mean() {
        let h = Histogram::new();
        for v in [10, 20, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1030);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.mean(), 343);
    }

    /// Pins the quantile contract on a known distribution:
    /// 90 samples of 10 µs (bucket 4, upper bound 16), 9 of 100 µs
    /// (bucket 7, upper bound 128), 1 of 1000 µs (bucket 10, upper 1024,
    /// clamped to the 1000 max).
    #[test]
    fn quantile_pinned_on_known_distribution() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..9 {
            h.record(100);
        }
        h.record(1000);
        assert_eq!(h.quantile(0.50), 16); // rank 50 → bucket of the 10s
        assert_eq!(h.quantile(0.90), 16); // rank 90 → still the 10s
        assert_eq!(h.quantile(0.99), 128); // rank 99 → bucket of the 100s
        assert_eq!(h.quantile(1.00), 1000); // p100 clamps to observed max
    }

    /// q = 0.0 ranks at 1, i.e. the smallest occupied bucket's upper bound.
    #[test]
    fn quantile_zero_returns_smallest_occupied_bucket() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.0), 0); // empty → 0
        h.record(100); // bucket 7, upper bound 128, clamped to max 100
        assert_eq!(h.quantile(0.0), 100);
        h.record(1000);
        assert_eq!(h.quantile(0.0), 128); // smallest occupied bucket: the 100
        h.record(0); // bucket 0, upper bound 1
        assert_eq!(h.quantile(0.0), 1);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(3);
        g.add(2);
        g.sub(4);
        assert_eq!(g.get(), 1);
    }
}
