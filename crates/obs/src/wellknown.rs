//! Well-known instrument families for shared subsystems.
//!
//! The buffer pool (`epfis-storage`) and the stack analyzer feeding
//! ingest sessions are library code: they have no idea whether a server,
//! a bench binary, or a test is driving them, and must not depend on
//! `epfis-server`. They therefore publish into process-global instruments
//! registered here in [`Registry::global`]; anything that serves
//! `/metrics` renders the global registry alongside its own.
//!
//! Accessors are `OnceLock`-cached so a hot caller pays one initialized
//! check, not a registry lookup.

use std::sync::{Arc, OnceLock};

use crate::metrics::{Counter, Gauge};
use crate::registry::Registry;

/// Buffer-pool counters: requests, hits, misses, evictions by kind.
pub struct BufferPoolMetrics {
    /// Page requests (`epfis_bufferpool_requests_total`).
    pub requests: Arc<Counter>,
    /// Requests satisfied from a resident frame (`epfis_bufferpool_hits_total`).
    pub hits: Arc<Counter>,
    /// Requests that had to fetch (`epfis_bufferpool_misses_total`).
    pub misses: Arc<Counter>,
    /// Clean-frame evictions (`epfis_bufferpool_evictions_total{kind="clean"}`).
    pub evictions_clean: Arc<Counter>,
    /// Dirty-frame evictions, which imply a write-back
    /// (`epfis_bufferpool_evictions_total{kind="dirty"}`).
    pub evictions_dirty: Arc<Counter>,
}

/// The process-global buffer-pool instruments.
pub fn bufferpool() -> &'static BufferPoolMetrics {
    static METRICS: OnceLock<BufferPoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = Registry::global();
        BufferPoolMetrics {
            requests: r.counter(
                "epfis_bufferpool_requests_total",
                "Buffer-pool page requests across all pools in the process",
                &[],
            ),
            hits: r.counter(
                "epfis_bufferpool_hits_total",
                "Buffer-pool requests satisfied without a fetch",
                &[],
            ),
            misses: r.counter(
                "epfis_bufferpool_misses_total",
                "Buffer-pool requests that fetched from the backing device",
                &[],
            ),
            evictions_clean: r.counter(
                "epfis_bufferpool_evictions_total",
                "Buffer-pool frame evictions by kind",
                &[("kind", "clean")],
            ),
            evictions_dirty: r.counter(
                "epfis_bufferpool_evictions_total",
                "Buffer-pool frame evictions by kind",
                &[("kind", "dirty")],
            ),
        }
    })
}

/// Stack-analyzer / ingest instruments.
pub struct AnalyzerMetrics {
    /// Page references processed (`epfis_analyzer_refs_total`). Publishers
    /// add per batch, not per reference, to keep the analyzer loop clean.
    pub refs: Arc<Counter>,
    /// Bennett–Kruskal time-axis compactions (`epfis_analyzer_compactions_total`).
    pub compactions: Arc<Counter>,
    /// ANALYZE sessions opened so far (`epfis_analyzer_sessions_total`).
    pub sessions: Arc<Counter>,
    /// ANALYZE sessions currently open (`epfis_analyzer_active_sessions`).
    pub active_sessions: Arc<Gauge>,
}

/// The process-global analyzer instruments.
pub fn analyzer() -> &'static AnalyzerMetrics {
    static METRICS: OnceLock<AnalyzerMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = Registry::global();
        AnalyzerMetrics {
            refs: r.counter(
                "epfis_analyzer_refs_total",
                "Page references fed into incremental stack analyzers",
                &[],
            ),
            compactions: r.counter(
                "epfis_analyzer_compactions_total",
                "Time-axis compactions performed by incremental stack analyzers",
                &[],
            ),
            sessions: r.counter(
                "epfis_analyzer_sessions_total",
                "ANALYZE ingest sessions opened",
                &[],
            ),
            active_sessions: r.gauge(
                "epfis_analyzer_active_sessions",
                "ANALYZE ingest sessions currently open",
                &[],
            ),
        }
    })
}

/// Write-ahead-log instruments, published by `epfis-wal` (appends, bytes,
/// fsyncs, replay) and `epfis-server` (recovery outcome).
pub struct WalMetrics {
    /// Records appended (`epfis_wal_appends_total`).
    pub appends: Arc<Counter>,
    /// Bytes appended, framing included (`epfis_wal_bytes_total`).
    pub bytes: Arc<Counter>,
    /// Explicit data syncs issued (`epfis_wal_fsyncs_total`).
    pub fsyncs: Arc<Counter>,
    /// Records recovered during replay (`epfis_wal_replay_records_total`).
    pub replay_records: Arc<Counter>,
    /// Microseconds the last startup replay took
    /// (`epfis_wal_replay_duration_us`).
    pub replay_duration_us: Arc<Gauge>,
    /// In-flight sessions recovered and parked for `ANALYZE RESUME`
    /// (`epfis_wal_recovered_sessions_total`).
    pub recovered_sessions: Arc<Counter>,
    /// Failed explicit data syncs, foreground or on the background
    /// flusher's duplicate fd (`epfis_wal_fsync_errors_total`).
    pub fsync_errors: Arc<Counter>,
    /// Durability failures that poisoned a writer
    /// (`epfis_wal_poisonings_total`).
    pub poisonings: Arc<Counter>,
    /// Successful `Wal::heal` recoveries (`epfis_wal_heals_total`).
    pub heals: Arc<Counter>,
}

/// The process-global WAL instruments.
pub fn wal() -> &'static WalMetrics {
    static METRICS: OnceLock<WalMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = Registry::global();
        WalMetrics {
            appends: r.counter(
                "epfis_wal_appends_total",
                "Records appended to write-ahead logs in this process",
                &[],
            ),
            bytes: r.counter(
                "epfis_wal_bytes_total",
                "Bytes appended to write-ahead logs, record framing included",
                &[],
            ),
            fsyncs: r.counter(
                "epfis_wal_fsyncs_total",
                "Explicit fdatasync calls issued by write-ahead logs",
                &[],
            ),
            replay_records: r.counter(
                "epfis_wal_replay_records_total",
                "Valid records recovered during write-ahead-log replay",
                &[],
            ),
            replay_duration_us: r.gauge(
                "epfis_wal_replay_duration_us",
                "Duration of the most recent startup WAL replay, in microseconds",
                &[],
            ),
            recovered_sessions: r.counter(
                "epfis_wal_recovered_sessions_total",
                "In-flight ANALYZE sessions recovered from the WAL and parked for resume",
                &[],
            ),
            fsync_errors: r.counter(
                "epfis_wal_fsync_errors_total",
                "Failed explicit data syncs on write-ahead logs, foreground or background",
                &[],
            ),
            poisonings: r.counter(
                "epfis_wal_poisonings_total",
                "Durability failures that poisoned a write-ahead-log writer",
                &[],
            ),
            heals: r.counter(
                "epfis_wal_heals_total",
                "Successful write-ahead-log heal recoveries after poisoning",
                &[],
            ),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wellknown_families_register_once_and_render() {
        let a = bufferpool();
        let b = bufferpool();
        a.requests.inc();
        b.requests.inc();
        assert!(a.requests.get() >= 2);
        analyzer().refs.add(10);
        analyzer().active_sessions.add(1);
        analyzer().active_sessions.sub(1);
        wal().appends.inc();
        wal().replay_duration_us.set(42);
        let text = Registry::global().render_prometheus();
        for family in [
            "epfis_bufferpool_requests_total",
            "epfis_bufferpool_hits_total",
            "epfis_bufferpool_misses_total",
            "epfis_bufferpool_evictions_total{kind=\"clean\"}",
            "epfis_bufferpool_evictions_total{kind=\"dirty\"}",
            "epfis_analyzer_refs_total",
            "epfis_analyzer_compactions_total",
            "epfis_analyzer_sessions_total",
            "epfis_analyzer_active_sessions 0",
            "epfis_wal_appends_total",
            "epfis_wal_bytes_total",
            "epfis_wal_fsyncs_total",
            "epfis_wal_replay_records_total",
            "epfis_wal_replay_duration_us 42",
            "epfis_wal_recovered_sessions_total",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }
}
