//! Event sinks: where rendered events go.
//!
//! A [`Sink`] consumes [`Event`]s the logger has already level-filtered.
//! Sinks must be `Send + Sync` — the logger is shared across worker
//! threads — and should degrade gracefully: an I/O failure (stderr gone,
//! disk full) is swallowed, never propagated into the serving path.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::Event;

/// Output encoding shared by the stderr and file sinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// One space-separated `key=value` line per event.
    Human,
    /// One JSON object per line per event.
    Json,
}

impl LogFormat {
    /// Parses `human` or `json` (case-insensitive).
    pub fn parse(s: &str) -> Result<LogFormat, String> {
        match s.to_ascii_lowercase().as_str() {
            "human" | "text" => Ok(LogFormat::Human),
            "json" | "jsonl" => Ok(LogFormat::Json),
            other => Err(format!(
                "unknown log format {other:?} (expected human|json)"
            )),
        }
    }
}

/// A destination for level-filtered events.
pub trait Sink: Send + Sync {
    /// Consumes one event. Must not panic and must not block unboundedly.
    fn emit(&self, event: &Event);
}

/// Writes one line per event to stderr.
pub struct StderrSink {
    format: LogFormat,
}

impl StderrSink {
    /// Creates a stderr sink with the given encoding.
    pub fn new(format: LogFormat) -> StderrSink {
        StderrSink { format }
    }
}

impl Sink for StderrSink {
    fn emit(&self, event: &Event) {
        let line = match self.format {
            LogFormat::Human => event.render_human(),
            LogFormat::Json => event.render_json(),
        };
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "{line}");
    }
}

/// Appends one JSON line per event to a file, flushing after each event so
/// `tail -f` and post-crash inspection see everything that was emitted.
///
/// Serialized by a mutex: event volume at the default `info` level is a few
/// lines per connection, so contention is not a concern; high-volume
/// `trace` output should prefer the ring buffer.
pub struct FileSink {
    writer: Mutex<BufWriter<File>>,
}

impl FileSink {
    /// Opens `path` in append mode (creating it if needed).
    pub fn append<P: AsRef<Path>>(path: P) -> std::io::Result<FileSink> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(FileSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl Sink for FileSink {
    fn emit(&self, event: &Event) {
        let line = event.render_json();
        if let Ok(mut w) = self.writer.lock() {
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Level, Value};

    #[test]
    fn format_parses() {
        assert_eq!(LogFormat::parse("Human"), Ok(LogFormat::Human));
        assert_eq!(LogFormat::parse("jsonl"), Ok(LogFormat::Json));
        assert!(LogFormat::parse("xml").is_err());
    }

    #[test]
    fn file_sink_appends_json_lines() {
        let dir = std::env::temp_dir().join(format!("epfis-obs-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let _ = std::fs::remove_file(&path);
        let sink = FileSink::append(&path).unwrap();
        for i in 0..3u64 {
            sink.emit(&Event {
                level: Level::Info,
                target: "t",
                name: "n",
                unix_micros: i,
                fields: vec![("i", Value::from(i))],
            });
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains(&format!("\"ts_us\":{i}")));
        }
        let _ = std::fs::remove_file(&path);
    }
}
