//! `EXPLAIN`-able estimates: the [`EstimateTrace`] produced by
//! [`crate::est_io::estimate_traced`] and its wire rendering.
//!
//! The trace records every decision Est-IO makes on the way to a number:
//! which FPF line segment the buffer size landed on (and whether it was
//! interpolated, extrapolated, or an exact knot hit), whether the clamp
//! into `[A, N]` engaged, whether the small-σ correction fired and with
//! what damping and Cardenas term, and whether the urn-model sargable
//! reduction applied. The traced *value* is bit-identical to
//! [`crate::est_io::estimate`] — both run the same arithmetic; tracing
//! only records intermediates — so `EXPLAIN ESTIMATE` can promise
//! byte-for-byte agreement with `ESTIMATE`.
//!
//! All floats render with Rust's `{}` shortest round-trip formatting, the
//! same contract the wire protocol documents for estimates.

use crate::est_io::ScanQuery;
use epfis_segfit::EvalTrace;

/// Whether the FPF clamp into `[A, N]` changed the raw segment value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clamp {
    /// The raw value was already within bounds.
    None,
    /// The raw value was below `A` and was raised to it.
    Floor,
    /// The raw value was above `N` and was lowered to it.
    Ceiling,
}

impl Clamp {
    /// Stable lower-case name for wire formats.
    pub fn name(self) -> &'static str {
        match self {
            Clamp::None => "none",
            Clamp::Floor => "floor",
            Clamp::Ceiling => "ceiling",
        }
    }
}

/// Step 4 of Est-IO: `PF_B` from the stored curve.
#[derive(Debug, Clone, PartialEq)]
pub struct FpfTrace {
    /// Total segments in the stored approximation.
    pub segments: usize,
    /// The segment evaluation: index, kind, endpoints, raw value.
    pub segment: EvalTrace,
    /// Lower clamp bound: distinct pages `A`.
    pub clamp_lo: f64,
    /// Upper clamp bound: records `N`.
    pub clamp_hi: f64,
    /// Which clamp (if any) engaged.
    pub clamp: Clamp,
    /// `PF_B` after clamping — what step 5 scales.
    pub value: f64,
}

/// Step 6 of Est-IO: the small-σ heuristic correction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrectionTrace {
    /// Whether the configuration enables the correction at all.
    pub enabled: bool,
    /// The φ reading used (`PhiMode`-dependent).
    pub phi: f64,
    /// The firing threshold `3σ`.
    pub threshold: f64,
    /// ν: whether the correction fired (`φ ≥ 3σ`).
    pub fired: bool,
    /// Damping `min(1, φ/(6σ))`; 0 when not fired.
    pub damping: f64,
    /// The Cardenas random-probe estimate `Card(T, σN)`; 0 when not fired.
    pub cardenas: f64,
    /// The term actually added: `damping · (1 − C) · cardenas`.
    pub term: f64,
}

/// Step 7 of Est-IO: the urn-model sargable-predicate reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SargableTrace {
    /// Whether the configuration enables the sargable model.
    pub enabled: bool,
    /// Whether it actually applied (`enabled` and `S < 1`).
    pub applied: bool,
    /// Referenced pages `Q = CσT + (1 − C)·min(T, σN)`; 0 when unused.
    pub q_pages: f64,
    /// Qualifying records `k = SσN`; 0 when unused.
    pub k: f64,
    /// The reduction factor `1 − (1 − 1/Q)^k`; 1 when not applied.
    pub factor: f64,
}

/// The full decision record of one Est-IO evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateTrace {
    /// The query as evaluated.
    pub query: ScanQuery,
    /// Table pages `T`.
    pub table_pages: u64,
    /// Records `N`.
    pub records: u64,
    /// Distinct pages `A` (the clamp floor).
    pub distinct_pages: u64,
    /// Clustering factor `C`.
    pub clustering_factor: f64,
    /// True when `σ = 0` short-circuited the whole evaluation to 0.
    pub short_circuit: bool,
    /// The FPF evaluation; `None` only when short-circuited.
    pub fpf: Option<FpfTrace>,
    /// Step 5: `σ · PF_B` (0 when short-circuited).
    pub scaled: f64,
    /// Step 6 record.
    pub correction: CorrectionTrace,
    /// Step 7 record.
    pub sargable: SargableTrace,
    /// The final estimate, bit-identical to `est_io::estimate`.
    pub value: f64,
}

impl EstimateTrace {
    /// Renders the wire form: the first line is exactly the estimate as
    /// `ESTIMATE` would serve it (`{}` formatting, byte-identical), the
    /// remaining lines are `key key=value...` trace records.
    pub fn wire_lines(&self) -> Vec<String> {
        let mut lines = vec![
            format!("{}", self.value),
            format!(
                "input sigma={} sargable={} buffer={}",
                self.query.selectivity, self.query.sargable_selectivity, self.query.buffer_pages
            ),
            format!(
                "stats T={} N={} A={} C={}",
                self.table_pages, self.records, self.distinct_pages, self.clustering_factor
            ),
        ];
        match &self.fpf {
            None => lines.push("fpf skipped=sigma-zero".to_string()),
            Some(fpf) => {
                let seg = &fpf.segment;
                lines.push(format!(
                    "fpf segment={}/{} kind={} b0={} f0={} b1={} f1={} raw={} clamp={} lo={} hi={} pf_b={}",
                    seg.segment,
                    fpf.segments,
                    seg.kind.name(),
                    seg.x0,
                    seg.y0,
                    seg.x1,
                    seg.y1,
                    seg.value,
                    fpf.clamp.name(),
                    fpf.clamp_lo,
                    fpf.clamp_hi,
                    fpf.value
                ));
            }
        }
        lines.push(format!("scaled {}", self.scaled));
        let c = &self.correction;
        lines.push(format!(
            "correction enabled={} phi={} threshold={} fired={} damping={} cardenas={} term={}",
            c.enabled, c.phi, c.threshold, c.fired, c.damping, c.cardenas, c.term
        ));
        let s = &self.sargable;
        lines.push(format!(
            "sargable enabled={} applied={} q_pages={} k={} factor={}",
            s.enabled, s.applied, s.q_pages, s.k, s.factor
        ));
        lines.push(format!("value {}", self.value));
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EpfisConfig;
    use crate::est_io::estimate_traced;
    use crate::lru_fit::LruFit;
    use epfis_lrusim::KeyedTrace;

    fn stats() -> crate::stats::IndexStatistics {
        let pages: Vec<u32> = (0..2000u32)
            .map(|i| i.wrapping_mul(2654435761) % 100)
            .collect();
        LruFit::new(EpfisConfig::default()).collect(&KeyedTrace::all_distinct(pages, 100))
    }

    #[test]
    fn wire_lines_lead_with_the_exact_estimate() {
        let stats = stats();
        let q = ScanQuery::range(0.3, 40).with_sargable(0.2);
        let trace = estimate_traced(&stats, &q, &stats.config);
        let lines = trace.wire_lines();
        assert_eq!(lines[0], format!("{}", stats.estimate(&q)));
        assert_eq!(lines.last().unwrap(), &format!("value {}", trace.value));
        assert!(lines.iter().any(|l| l.starts_with("fpf segment=")));
        assert!(lines
            .iter()
            .any(|l| l.starts_with("correction enabled=true")));
        assert!(lines
            .iter()
            .any(|l| l.starts_with("sargable enabled=true applied=true")));
    }

    #[test]
    fn short_circuit_renders_a_skip_marker() {
        let stats = stats();
        let trace = estimate_traced(&stats, &ScanQuery::range(0.0, 40), &stats.config);
        assert!(trace.short_circuit);
        let lines = trace.wire_lines();
        assert_eq!(lines[0], "0");
        assert!(lines.iter().any(|l| l == "fpf skipped=sigma-zero"));
    }
}
