//! Selectivity estimation: the optimizer input EPFIS takes as given.
//!
//! Section 2: "the optimizer estimates the selectivity ... Methods for
//! estimating the selectivity are well known (Mannino et al., 1988), and
//! are not discussed here." A reproduction that stops at "σ is an input"
//! leaves the optimizer demo hollow, so this module supplies the standard
//! method: an **equi-depth histogram** over the key column, built from the
//! same statistics scan LRU-Fit rides on, with uniform interpolation inside
//! buckets. Together with [`crate::est_io`] this closes the loop:
//! predicate → σ̂ → page-fetch estimate.

/// A bound of a key-range predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyBound {
    /// No bound on this side.
    Unbounded,
    /// `>= v` (as a lower bound) / `<= v` (as an upper bound).
    Included(i64),
    /// `> v` / `< v`.
    Excluded(i64),
}

/// An equi-depth (equi-height) histogram: `buckets` ranges each holding
/// roughly `N / buckets` records.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiDepthHistogram {
    /// Bucket boundaries: `bounds[i]..=bounds[i+1]` is bucket `i`
    /// (boundaries are actual key values; `bounds.len() == buckets + 1`).
    bounds: Vec<i64>,
    /// Exact record count per bucket.
    depths: Vec<u64>,
    /// Distinct keys per bucket (for equality estimates).
    distinct: Vec<u64>,
    total: u64,
}

impl EquiDepthHistogram {
    /// Builds the histogram from `(key value, record count)` pairs sorted by
    /// key — exactly what the statistics scan produces.
    ///
    /// # Panics
    /// Panics if `pairs` is empty/unsorted or `buckets == 0`.
    pub fn build(pairs: &[(i64, u64)], buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        assert!(!pairs.is_empty(), "need at least one key");
        for w in pairs.windows(2) {
            assert!(w[0].0 < w[1].0, "keys must be strictly increasing");
        }
        let total: u64 = pairs.iter().map(|&(_, c)| c).sum();
        assert!(total > 0, "need at least one record");
        let target = (total as f64 / buckets as f64).max(1.0);

        let mut bounds = vec![pairs[0].0];
        let mut depths = Vec::new();
        let mut distinct = Vec::new();
        let mut depth = 0u64;
        let mut keys = 0u64;
        let mut filled = 0usize;
        for (i, &(key, count)) in pairs.iter().enumerate() {
            depth += count;
            keys += 1;
            let is_last_key = i + 1 == pairs.len();
            // Close the bucket when it reaches its share, unless it is the
            // final bucket (which absorbs the remainder).
            let quota_met = (depth as f64) >= target && filled + 1 < buckets;
            if (quota_met || is_last_key) && depth > 0 {
                bounds.push(key);
                depths.push(depth);
                distinct.push(keys);
                depth = 0;
                keys = 0;
                filled += 1;
            }
        }
        EquiDepthHistogram {
            bounds,
            depths,
            distinct,
            total,
        }
    }

    /// Number of buckets actually produced (≤ the requested count).
    pub fn buckets(&self) -> usize {
        self.depths.len()
    }

    /// Total records.
    pub fn total_records(&self) -> u64 {
        self.total
    }

    /// Smallest and largest key values.
    pub fn key_range(&self) -> (i64, i64) {
        (self.bounds[0], *self.bounds.last().unwrap())
    }

    /// Estimated fraction of records with key `<= v` (uniform interpolation
    /// within the containing bucket).
    fn fraction_le(&self, v: i64) -> f64 {
        let (min, max) = self.key_range();
        if v < min {
            return 0.0;
        }
        if v >= max {
            return 1.0;
        }
        // Find the bucket whose (lo, hi] range contains v.
        let mut acc = 0u64;
        for (i, &depth) in self.depths.iter().enumerate() {
            let lo = self.bounds[i];
            let hi = self.bounds[i + 1];
            if v < hi {
                // First bucket's range is inclusive of its lower bound.
                let span = (hi - lo) as f64;
                let within = if span == 0.0 {
                    1.0
                } else {
                    (v - lo) as f64 / span
                };
                return (acc as f64 + depth as f64 * within) / self.total as f64;
            }
            acc += depth;
        }
        1.0
    }

    /// Estimated selectivity of a range predicate.
    pub fn estimate_range(&self, lo: KeyBound, hi: KeyBound) -> f64 {
        let upper = match hi {
            KeyBound::Unbounded => 1.0,
            KeyBound::Included(v) => self.fraction_le(v),
            KeyBound::Excluded(v) => self.fraction_le(v) - self.estimate_eq(v),
        };
        let lower = match lo {
            KeyBound::Unbounded => 0.0,
            KeyBound::Included(v) => self.fraction_le(v) - self.estimate_eq(v),
            KeyBound::Excluded(v) => self.fraction_le(v),
        };
        (upper - lower).clamp(0.0, 1.0)
    }

    /// Estimated selectivity of `key = v` (bucket depth spread over its
    /// distinct keys — the classic uniform-within-bucket assumption).
    pub fn estimate_eq(&self, v: i64) -> f64 {
        let (min, max) = self.key_range();
        if v < min || v > max {
            return 0.0;
        }
        for (i, &depth) in self.depths.iter().enumerate() {
            let hi = self.bounds[i + 1];
            if v <= hi {
                let d = self.distinct[i].max(1) as f64;
                return depth as f64 / d / self.total as f64;
            }
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_pairs(keys: i64, per_key: u64) -> Vec<(i64, u64)> {
        (0..keys).map(|k| (k * 10, per_key)).collect()
    }

    fn true_selectivity(pairs: &[(i64, u64)], lo: KeyBound, hi: KeyBound) -> f64 {
        let total: u64 = pairs.iter().map(|&(_, c)| c).sum();
        let hit: u64 = pairs
            .iter()
            .filter(|&&(k, _)| {
                let ge = match lo {
                    KeyBound::Unbounded => true,
                    KeyBound::Included(v) => k >= v,
                    KeyBound::Excluded(v) => k > v,
                };
                let le = match hi {
                    KeyBound::Unbounded => true,
                    KeyBound::Included(v) => k <= v,
                    KeyBound::Excluded(v) => k < v,
                };
                ge && le
            })
            .map(|&(_, c)| c)
            .sum();
        hit as f64 / total as f64
    }

    #[test]
    fn buckets_hold_roughly_equal_depth() {
        let pairs = uniform_pairs(1000, 5);
        let h = EquiDepthHistogram::build(&pairs, 10);
        assert_eq!(h.buckets(), 10);
        for i in 0..h.buckets() {
            let depth = h.depths[i] as f64;
            assert!(
                (depth - 500.0).abs() <= 5.0,
                "bucket {i} depth {depth} far from 500"
            );
        }
    }

    #[test]
    fn range_estimates_track_truth_on_uniform_keys() {
        let pairs = uniform_pairs(500, 4);
        let h = EquiDepthHistogram::build(&pairs, 16);
        for (lo, hi) in [
            (KeyBound::Included(100), KeyBound::Included(2000)),
            (KeyBound::Excluded(0), KeyBound::Excluded(4990)),
            (KeyBound::Unbounded, KeyBound::Included(1234)),
            (KeyBound::Included(4000), KeyBound::Unbounded),
        ] {
            let est = h.estimate_range(lo, hi);
            let truth = true_selectivity(&pairs, lo, hi);
            assert!(
                (est - truth).abs() < 0.03,
                "({lo:?},{hi:?}): est {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn skewed_depths_are_tracked_where_uniform_histograms_fail() {
        // One key holds half the records; the equi-depth histogram isolates
        // it so range estimates around it stay accurate.
        let mut pairs = uniform_pairs(100, 10);
        pairs[50].1 = 1000;
        let h = EquiDepthHistogram::build(&pairs, 20);
        let lo = KeyBound::Included(490);
        let hi = KeyBound::Included(510);
        let est = h.estimate_range(lo, hi);
        let truth = true_selectivity(&pairs, lo, hi);
        assert!(
            (est - truth).abs() < 0.15,
            "est {est} vs truth {truth} around the heavy key"
        );
        assert!(truth > 0.5, "sanity: the heavy key dominates");
    }

    #[test]
    fn out_of_range_predicates_are_zero_or_one() {
        let pairs = uniform_pairs(10, 1);
        let h = EquiDepthHistogram::build(&pairs, 4);
        assert_eq!(
            h.estimate_range(KeyBound::Included(-100), KeyBound::Included(-50)),
            0.0
        );
        assert_eq!(
            h.estimate_range(KeyBound::Unbounded, KeyBound::Included(1_000)),
            1.0
        );
        assert_eq!(h.estimate_eq(-5), 0.0);
        assert_eq!(h.estimate_eq(95), 0.0);
    }

    #[test]
    fn equality_estimate_uses_bucket_distinct_counts() {
        let pairs = uniform_pairs(100, 7);
        let h = EquiDepthHistogram::build(&pairs, 10);
        let est = h.estimate_eq(500);
        let truth = 7.0 / 700.0;
        assert!((est - truth).abs() < 0.005, "est {est} vs truth {truth}");
    }

    #[test]
    fn degenerate_single_key() {
        let h = EquiDepthHistogram::build(&[(42, 9)], 4);
        assert_eq!(h.buckets(), 1);
        assert_eq!(
            h.estimate_range(KeyBound::Included(42), KeyBound::Included(42)),
            1.0
        );
        assert_eq!(h.estimate_eq(42), 1.0);
    }

    #[test]
    fn more_buckets_never_hurt_on_monotone_data() {
        let pairs: Vec<(i64, u64)> = (0..300).map(|k| (k * k, (k % 9 + 1) as u64)).collect();
        let err = |buckets: usize| {
            let h = EquiDepthHistogram::build(&pairs, buckets);
            let mut worst = 0.0f64;
            for q in (0..280).step_by(13) {
                let lo = KeyBound::Included(pairs[q].0);
                let hi = KeyBound::Included(pairs[q + 20].0);
                worst =
                    worst.max((h.estimate_range(lo, hi) - true_selectivity(&pairs, lo, hi)).abs());
            }
            worst
        };
        assert!(err(32) <= err(2) + 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_pairs_panic() {
        EquiDepthHistogram::build(&[(5, 1), (3, 1)], 2);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panic() {
        EquiDepthHistogram::build(&[(1, 1)], 0);
    }
}
