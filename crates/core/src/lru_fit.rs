//! Subprogram LRU-Fit (§4.1): statistics-collection-time buffer modeling.
//!
//! Steps, exactly as the paper lists them:
//!
//! 1. Determine the modeling range `[B_min, B_max]` (automatic or
//!    DBA-specified).
//! 2. One pass over the index's page-reference trace with the LRU stack
//!    property yields page-fetch counts for *every* buffer size; sample them
//!    at the grid points.
//! 3. In the same pass, record `F_min = F(B_min)` and compute the clustering
//!    factor `C = (N − F_min)/(N − T)`.
//! 4. Approximate the `(B_i, F_i)` table with at most `segments` line
//!    segments; store the segment end-points.

use crate::config::EpfisConfig;
use crate::grid::grid_points;
use crate::stats::IndexStatistics;
use epfis_lrusim::{clustering_factor, epfis_b_min, FetchCurve, KeyedTrace, StackAnalyzer};
use epfis_segfit::fit_max_segments;

/// The statistics collector. Construct once with a configuration, then
/// [`collect`](LruFit::collect) per index.
#[derive(Debug, Clone)]
pub struct LruFit {
    config: EpfisConfig,
}

impl Default for LruFit {
    /// A collector with the paper-default [`EpfisConfig`].
    fn default() -> Self {
        LruFit::new(EpfisConfig::default())
    }
}

impl LruFit {
    /// Creates a collector; panics on invalid configuration.
    pub fn new(config: EpfisConfig) -> Self {
        config.validate();
        LruFit { config }
    }

    /// The collector's configuration.
    pub fn config(&self) -> &EpfisConfig {
        &self.config
    }

    /// Runs the full collection pipeline over an index's reference trace.
    pub fn collect(&self, trace: &KeyedTrace) -> IndexStatistics {
        let mut analyzer = StackAnalyzer::with_capacity(trace.pages().len());
        for &p in trace.pages() {
            analyzer.access(p);
        }
        let curve = analyzer.finish().fetch_curve();
        self.collect_from_curve(
            &curve,
            trace.table_pages() as u64,
            trace.num_entries(),
            trace.num_keys(),
        )
    }

    /// Builds the catalog entry from an already-computed exact fetch curve
    /// (lets callers share one stack pass between EPFIS and the baseline
    /// estimators).
    pub fn collect_from_curve(
        &self,
        curve: &FetchCurve,
        table_pages: u64,
        records: u64,
        distinct_keys: u64,
    ) -> IndexStatistics {
        assert!(table_pages > 0, "table must have pages");
        assert!(records > 0, "index must have entries");
        assert!(
            table_pages <= u32::MAX as u64,
            "table too large for the trace model"
        );
        let (b_min, b_max) = self.modeling_range(table_pages);
        let grid = grid_points(b_min, b_max, self.config.grid);
        let samples: Vec<(f64, f64)> = grid
            .iter()
            .map(|&b| (b as f64, curve.fetches(b) as f64))
            .collect();
        let fpf = fit_max_segments(&samples, self.config.segments);
        let c = clustering_factor(curve, table_pages as u32, b_min);
        IndexStatistics {
            table_pages,
            records,
            distinct_keys,
            distinct_pages: curve.cold(),
            clustering_factor: c,
            b_min,
            b_max,
            fpf,
            config: self.config,
        }
    }

    /// The modeling range: DBA override, else
    /// `[max(0.01·T, B_sml), T]`, both clamped into `[1, T]`.
    pub fn modeling_range(&self, table_pages: u64) -> (u64, u64) {
        if let Some((lo, hi)) = self.config.modeling_range {
            let hi = hi.min(table_pages.max(1));
            return (lo.min(hi), hi);
        }
        let b_min = epfis_b_min(table_pages as u32, self.config.b_sml);
        (b_min, table_pages.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GridStrategy;

    /// A trace with genuine reuse: keys jump between page neighborhoods.
    fn test_trace(pages_n: u32) -> KeyedTrace {
        let n = pages_n * 4;
        let pages: Vec<u32> = (0..n)
            .map(|i| (i.wrapping_mul(2654435761)) % pages_n)
            .collect();
        KeyedTrace::all_distinct(pages, pages_n)
    }

    #[test]
    fn modeling_range_follows_paper() {
        let fit = LruFit::new(EpfisConfig::default());
        // Small table: 1% of T below B_sml => B_min = 12.
        assert_eq!(fit.modeling_range(774), (12, 774));
        // Large table: 1% of T dominates.
        assert_eq!(fit.modeling_range(25_000), (250, 25_000));
    }

    #[test]
    fn dba_range_overrides() {
        let fit = LruFit::new(EpfisConfig::default().with_modeling_range(50, 400));
        assert_eq!(fit.modeling_range(1_000), (50, 400));
        // Range is clamped to the table size.
        assert_eq!(fit.modeling_range(300), (50, 300));
    }

    #[test]
    fn collect_produces_consistent_statistics() {
        let trace = test_trace(200);
        let stats = LruFit::new(EpfisConfig::default()).collect(&trace);
        assert_eq!(stats.table_pages, 200);
        assert_eq!(stats.records, 800);
        assert_eq!(stats.distinct_keys, 800);
        assert!(stats.b_min == 12 && stats.b_max == 200);
        assert!((0.0..=1.0).contains(&stats.clustering_factor));
        assert!(stats.fpf.segments() <= 6);
        // The approximation matches the exact curve to within its own
        // max deviation at the endpoints.
        let exact_min = epfis_lrusim::simulate_lru(trace.pages(), 12) as f64;
        assert!((stats.full_scan_fetches(12) - exact_min).abs() < 1e-6);
        let exact_max = epfis_lrusim::simulate_lru(trace.pages(), 200) as f64;
        assert!((stats.full_scan_fetches(200) - exact_max).abs() < 1e-6);
    }

    #[test]
    fn fpf_is_clamped_to_a_and_n() {
        let trace = test_trace(100);
        let stats = LruFit::new(EpfisConfig::default()).collect(&trace);
        assert_eq!(stats.distinct_pages, trace.distinct_pages());
        // Extrapolation far beyond the range cannot leave [A, N].
        assert!(stats.full_scan_fetches(1) <= stats.records as f64);
        assert!(stats.full_scan_fetches(10_000) >= stats.distinct_pages as f64);
    }

    #[test]
    fn sequential_trace_is_perfectly_clustered() {
        let pages: Vec<u32> = (0..500u32).map(|i| i / 5).collect();
        let trace = KeyedTrace::all_distinct(pages, 100);
        let stats = LruFit::new(EpfisConfig::default()).collect(&trace);
        assert_eq!(stats.clustering_factor, 1.0);
        // FPF curve is flat at T.
        assert!((stats.full_scan_fetches(12) - 100.0).abs() < 1e-9);
        assert!((stats.full_scan_fetches(100) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn geometric_grid_also_works() {
        let trace = test_trace(300);
        let cfg = EpfisConfig::default().with_grid(GridStrategy::Geometric { points: 20 });
        let stats = LruFit::new(cfg).collect(&trace);
        assert!(stats.fpf.segments() <= 6);
        assert!(stats.full_scan_fetches(300) >= 300.0 - 1e-9);
    }

    #[test]
    fn curve_sharing_matches_direct_collection() {
        let trace = test_trace(150);
        let fit = LruFit::new(EpfisConfig::default());
        let direct = fit.collect(&trace);
        let curve = epfis_lrusim::analyze_trace(trace.pages()).fetch_curve();
        let shared = fit.collect_from_curve(&curve, 150, 600, 600);
        assert_eq!(direct, shared);
    }

    #[test]
    fn more_segments_never_hurt_fit_quality() {
        let trace = test_trace(400);
        let exact = epfis_lrusim::analyze_trace(trace.pages()).fetch_curve();
        let err = |segments: usize| {
            let cfg = EpfisConfig::default().with_segments(segments);
            let stats = LruFit::new(cfg).collect(&trace);
            let mut worst = 0.0f64;
            for b in (12..=400).step_by(8) {
                let e = (stats.full_scan_fetches(b) - exact.fetches(b) as f64).abs();
                worst = worst.max(e);
            }
            worst
        };
        assert!(err(6) <= err(2) + 1e-9);
        assert!(err(12) <= err(6) + 1e-9);
    }

    #[test]
    #[should_panic(expected = "entries")]
    fn empty_curve_rejected() {
        let fit = LruFit::new(EpfisConfig::default());
        let empty = epfis_lrusim::analyze_trace(&[]).fetch_curve();
        fit.collect_from_curve(&empty, 10, 0, 0);
    }
}
