//! Subprogram Est-IO (§4.2): query-compilation-time estimation.
//!
//! Given a catalog entry and a scan description, compute (Equation 1 plus
//! the sargable-predicate reduction):
//!
//! ```text
//! PF_B   = FPF approximation evaluated at B (clamped into [A, N])
//! φ      = max(1, B/T)                       (PhiMode::PaperMax, printed)
//! ν      = 1 if φ ≥ 3σ else 0
//! corr   = ν · min(1, φ/(6σ)) · (1 − C) · T(1 − (1 − 1/T)^{σN})
//! base   = σ · PF_B + corr
//! Q      = C σ T + (1 − C) min(T, σN)        (pages referenced)
//! k      = S σ N                             (qualifying records)
//! F      = (1 − (1 − 1/Q)^k) · base          (sargable reduction)
//! ```
//!
//! The correction exists because linear scaling (`σ · PF_B`) assumes the
//! partial scan enjoys the same caching as the full scan; when `σ` is small,
//! the buffer never warms up and the scan behaves like Cardenas random
//! probing instead — weighted by how unclustered the index is (`1 − C`).

use crate::config::{EpfisConfig, PhiMode};
use crate::explain::{Clamp, CorrectionTrace, EstimateTrace, FpfTrace, SargableTrace};
use crate::stats::IndexStatistics;
use epfis_estimators::occupancy::cardenas;
use epfis_estimators::traits::{PageFetchEstimator, ScanParams};

/// What the optimizer knows about a prospective scan when calling Est-IO.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanQuery {
    /// Selectivity `σ` of the start/stop conditions.
    pub selectivity: f64,
    /// Selectivity `S` of the index-sargable predicates (1.0 = none).
    pub sargable_selectivity: f64,
    /// Buffer pages `B` available to the scan (currently DBA-specified in
    /// the paper's system).
    pub buffer_pages: u64,
}

impl ScanQuery {
    /// A plain range scan (no sargable predicates).
    pub fn range(selectivity: f64, buffer_pages: u64) -> Self {
        ScanQuery {
            selectivity,
            sargable_selectivity: 1.0,
            buffer_pages,
        }
    }

    /// A full index scan.
    pub fn full(buffer_pages: u64) -> Self {
        Self::range(1.0, buffer_pages)
    }

    /// Builder: attach an index-sargable predicate selectivity.
    pub fn with_sargable(mut self, s: f64) -> Self {
        self.sargable_selectivity = s;
        self
    }

    /// Panics if the query is out of domain.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.selectivity),
            "selectivity must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.sargable_selectivity),
            "sargable selectivity must be in [0, 1]"
        );
        assert!(self.buffer_pages >= 1, "buffer must have at least one page");
    }
}

/// Estimates page fetches for `query` against `stats` (Subprogram Est-IO).
pub fn estimate(stats: &IndexStatistics, query: &ScanQuery, config: &EpfisConfig) -> f64 {
    estimate_impl::<false>(stats, query, config).0
}

/// Like [`estimate`] but records every decision on the way: the FPF
/// segment used and how (`EXPLAIN ESTIMATE`'s payload), the `[A, N]`
/// clamp, the small-σ correction, and the sargable reduction.
///
/// The traced value is bit-identical to [`estimate`]: both are the same
/// `estimate_impl` instantiation-by-flag, so the arithmetic cannot drift.
pub fn estimate_traced(
    stats: &IndexStatistics,
    query: &ScanQuery,
    config: &EpfisConfig,
) -> EstimateTrace {
    estimate_impl::<true>(stats, query, config)
        .1
        .expect("traced instantiation always returns a trace")
}

/// The one Est-IO implementation. `TRACED = false` performs exactly the
/// historical computation; `TRACED = true` additionally materializes an
/// [`EstimateTrace`]. Keeping a single body is what guarantees the
/// byte-for-byte `EXPLAIN ESTIMATE` ≡ `ESTIMATE` protocol contract.
fn estimate_impl<const TRACED: bool>(
    stats: &IndexStatistics,
    query: &ScanQuery,
    config: &EpfisConfig,
) -> (f64, Option<EstimateTrace>) {
    query.validate();
    let sigma = query.selectivity;
    let t = stats.table_pages as f64;
    let n = stats.records as f64;
    let c = stats.clustering_factor;

    let mut correction_trace = CorrectionTrace {
        enabled: config.enable_correction,
        phi: 0.0,
        threshold: 0.0,
        fired: false,
        damping: 0.0,
        cardenas: 0.0,
        term: 0.0,
    };
    let mut sargable_trace = SargableTrace {
        enabled: config.enable_sargable_model,
        applied: false,
        q_pages: 0.0,
        k: 0.0,
        factor: 1.0,
    };

    if sigma == 0.0 {
        // A plain `if` (not `bool::then`) keeps the untraced instantiation
        // from building the record at all.
        let trace = if TRACED {
            Some(EstimateTrace {
                query: *query,
                table_pages: stats.table_pages,
                records: stats.records,
                distinct_pages: stats.distinct_pages,
                clustering_factor: c,
                short_circuit: true,
                fpf: None,
                scaled: 0.0,
                correction: correction_trace,
                sargable: sargable_trace,
                value: 0.0,
            })
        } else {
            None
        };
        return (0.0, trace);
    }

    // Step 4: PF_B from the line-segment approximation.
    let (pf_b, fpf_trace) = if TRACED {
        let segment = stats.fpf.eval_traced(query.buffer_pages as f64);
        let lo = stats.distinct_pages as f64;
        let hi = stats.records as f64;
        let value = segment.value.clamp(lo, hi);
        let clamp = if value > segment.value {
            Clamp::Floor
        } else if value < segment.value {
            Clamp::Ceiling
        } else {
            Clamp::None
        };
        let trace = FpfTrace {
            segments: stats.fpf.segments(),
            segment,
            clamp_lo: lo,
            clamp_hi: hi,
            clamp,
            value,
        };
        (value, Some(trace))
    } else {
        (stats.full_scan_fetches(query.buffer_pages), None)
    };

    // Step 5: scale by the start/stop selectivity.
    let scaled = sigma * pf_b;
    let mut est = scaled;

    // Step 6: small-σ heuristic correction (Equation 1).
    if config.enable_correction {
        let ratio = query.buffer_pages as f64 / t;
        let phi = match config.phi_mode {
            PhiMode::PaperMax => ratio.max(1.0),
            PhiMode::ProseMin => ratio.min(1.0),
        };
        let nu = if phi >= 3.0 * sigma { 1.0 } else { 0.0 };
        if TRACED {
            correction_trace.phi = phi;
            correction_trace.threshold = 3.0 * sigma;
            correction_trace.fired = nu > 0.0;
        }
        if nu > 0.0 {
            let damping = (phi / (6.0 * sigma)).min(1.0);
            let probe = cardenas(t, sigma * n);
            let term = damping * (1.0 - c) * probe;
            est += term;
            if TRACED {
                correction_trace.damping = damping;
                correction_trace.cardenas = probe;
                correction_trace.term = term;
            }
        }
    }

    // Step 7: index-sargable predicate reduction (urn model).
    if config.enable_sargable_model && query.sargable_selectivity < 1.0 {
        let q_pages = c * sigma * t + (1.0 - c) * t.min(sigma * n);
        let k = query.sargable_selectivity * sigma * n;
        let factor = if q_pages <= 1.0 {
            // A single referenced page is fetched iff any record qualifies.
            if k > 0.0 {
                1.0
            } else {
                0.0
            }
        } else {
            1.0 - (1.0 - 1.0 / q_pages).powf(k)
        };
        est *= factor;
        if TRACED {
            sargable_trace.applied = true;
            sargable_trace.q_pages = q_pages;
            sargable_trace.k = k;
            sargable_trace.factor = factor;
        }
    }

    let value = est.max(0.0);
    let trace = if TRACED {
        Some(EstimateTrace {
            query: *query,
            table_pages: stats.table_pages,
            records: stats.records,
            distinct_pages: stats.distinct_pages,
            clustering_factor: c,
            short_circuit: false,
            fpf: fpf_trace,
            scaled,
            correction: correction_trace,
            sargable: sargable_trace,
            value,
        })
    } else {
        None
    };
    (value, trace)
}

/// Adapter so EPFIS can stand in the same benchmark harness slot as the
/// baseline estimators.
#[derive(Debug, Clone)]
pub struct EpfisEstimator {
    stats: IndexStatistics,
}

impl EpfisEstimator {
    /// Wraps a catalog entry.
    pub fn new(stats: IndexStatistics) -> Self {
        EpfisEstimator { stats }
    }

    /// The wrapped statistics.
    pub fn stats(&self) -> &IndexStatistics {
        &self.stats
    }
}

impl PageFetchEstimator for EpfisEstimator {
    fn name(&self) -> &'static str {
        "EPFIS"
    }

    fn estimate(&self, params: &ScanParams) -> f64 {
        let query = ScanQuery {
            selectivity: params.selectivity,
            sargable_selectivity: params.sargable_selectivity,
            buffer_pages: params.buffer_pages,
        };
        self.stats.estimate(&query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EpfisConfig;
    use crate::lru_fit::LruFit;
    use epfis_lrusim::KeyedTrace;

    /// An unclustered trace: 2000 records over 100 pages, pseudo-random.
    fn unclustered_stats() -> IndexStatistics {
        let pages: Vec<u32> = (0..2000u32)
            .map(|i| i.wrapping_mul(2654435761) % 100)
            .collect();
        let trace = KeyedTrace::all_distinct(pages, 100);
        LruFit::new(EpfisConfig::default()).collect(&trace)
    }

    /// A clustered trace: sequential fill.
    fn clustered_stats() -> IndexStatistics {
        let pages: Vec<u32> = (0..2000u32).map(|i| i / 20).collect();
        let trace = KeyedTrace::all_distinct(pages, 100);
        LruFit::new(EpfisConfig::default()).collect(&trace)
    }

    #[test]
    fn full_scan_estimate_equals_curve_value() {
        let stats = unclustered_stats();
        for b in [12u64, 40, 100] {
            let est = stats.estimate(&ScanQuery::full(b));
            // σ = 1 disables the correction (φ = 1 < 3) and the sargable
            // model (S = 1), so the estimate is PF_B itself.
            assert!((est - stats.full_scan_fetches(b)).abs() < 1e-9, "B={b}");
        }
    }

    #[test]
    fn zero_selectivity_estimates_zero() {
        let stats = unclustered_stats();
        assert_eq!(stats.estimate(&ScanQuery::range(0.0, 50)), 0.0);
    }

    #[test]
    fn estimates_are_within_hard_bounds() {
        let stats = unclustered_stats();
        for sigma in [0.01, 0.05, 0.2, 0.5, 0.9, 1.0] {
            for b in [12u64, 30, 70, 100] {
                let est = stats.estimate(&ScanQuery::range(sigma, b));
                assert!(est >= 0.0);
                assert!(
                    est <= stats.records as f64 + 1e-9,
                    "sigma={sigma} B={b}: {est}"
                );
            }
        }
    }

    #[test]
    fn correction_fires_only_for_small_sigma() {
        let stats = unclustered_stats();
        let with = stats.estimate(&ScanQuery::range(0.05, 100));
        let without = stats.estimate_with(
            &ScanQuery::range(0.05, 100),
            &EpfisConfig::default().without_correction(),
        );
        assert!(
            with > without,
            "small sigma on an unclustered index must be corrected upward"
        );
        // sigma > 1/3 disables it (phi = 1 < 3 sigma).
        let hi_with = stats.estimate(&ScanQuery::range(0.5, 100));
        let hi_without = stats.estimate_with(
            &ScanQuery::range(0.5, 100),
            &EpfisConfig::default().without_correction(),
        );
        assert!((hi_with - hi_without).abs() < 1e-12);
    }

    #[test]
    fn correction_vanishes_on_clustered_indexes() {
        let stats = clustered_stats();
        assert_eq!(stats.clustering_factor, 1.0);
        let with = stats.estimate(&ScanQuery::range(0.05, 100));
        let without = stats.estimate_with(
            &ScanQuery::range(0.05, 100),
            &EpfisConfig::default().without_correction(),
        );
        // (1 - C) = 0 kills the correction term.
        assert!((with - without).abs() < 1e-12);
    }

    #[test]
    fn damping_factor_caps_at_one() {
        // For very small sigma, min(1, phi/(6 sigma)) = 1: the correction is
        // the full (1-C)-weighted Cardenas estimate.
        let stats = unclustered_stats();
        let t = stats.table_pages as f64;
        let n = stats.records as f64;
        let c = stats.clustering_factor;
        let sigma = 0.01;
        let expected = sigma * stats.full_scan_fetches(50) + (1.0 - c) * cardenas(t, sigma * n);
        let est = stats.estimate(&ScanQuery::range(sigma, 50));
        assert!((est - expected).abs() < 1e-9);
    }

    #[test]
    fn prose_min_phi_suppresses_correction_for_tiny_buffers() {
        let stats = unclustered_stats();
        let cfg_min = EpfisConfig {
            phi_mode: PhiMode::ProseMin,
            ..EpfisConfig::default()
        };
        let sigma = 0.2;
        let b = 12u64; // B/T = 0.12 < 3 sigma = 0.6 -> nu = 0 under ProseMin
        let with_min = stats.estimate_with(&ScanQuery::range(sigma, b), &cfg_min);
        let uncorrected = stats.estimate_with(
            &ScanQuery::range(sigma, b),
            &EpfisConfig::default().without_correction(),
        );
        assert!((with_min - uncorrected).abs() < 1e-12);
        // Under the printed PaperMax reading the correction fires.
        let with_max = stats.estimate(&ScanQuery::range(sigma, b));
        assert!(with_max > with_min);
    }

    #[test]
    fn sargable_predicates_reduce_fetches() {
        let stats = unclustered_stats();
        let plain = stats.estimate(&ScanQuery::range(0.4, 50));
        let filtered = stats.estimate(&ScanQuery::range(0.4, 50).with_sargable(0.01));
        assert!(filtered < plain);
        assert!(filtered > 0.0);
    }

    #[test]
    fn sargable_selectivity_one_changes_nothing() {
        let stats = unclustered_stats();
        let a = stats.estimate(&ScanQuery::range(0.4, 50));
        let b = stats.estimate(&ScanQuery::range(0.4, 50).with_sargable(1.0));
        assert_eq!(a, b);
    }

    #[test]
    fn sargable_reduction_matches_urn_formula() {
        let stats = unclustered_stats();
        let q = ScanQuery::range(0.5, 50).with_sargable(0.1);
        let base = stats.estimate(&ScanQuery::range(0.5, 50));
        let t = stats.table_pages as f64;
        let n = stats.records as f64;
        let c = stats.clustering_factor;
        let q_pages = c * 0.5 * t + (1.0 - c) * t.min(0.5 * n);
        let k = 0.1 * 0.5 * n;
        let factor = 1.0 - (1.0 - 1.0 / q_pages).powf(k);
        assert!((stats.estimate(&q) - base * factor).abs() < 1e-9);
    }

    #[test]
    fn estimator_adapter_matches_direct_call() {
        let stats = unclustered_stats();
        let adapter = EpfisEstimator::new(stats.clone());
        let params = ScanParams::range(0.3, 40);
        let direct = stats.estimate(&ScanQuery::range(0.3, 40));
        assert_eq!(adapter.estimate(&params), direct);
        assert_eq!(adapter.name(), "EPFIS");
    }

    #[test]
    fn larger_buffers_never_increase_the_estimate() {
        let stats = unclustered_stats();
        for sigma in [0.05, 0.3, 1.0] {
            let mut prev = f64::INFINITY;
            for b in [12u64, 25, 50, 75, 100] {
                let est = stats.estimate(&ScanQuery::range(sigma, b));
                assert!(est <= prev + 1e-9, "sigma={sigma} B={b}: {est} > {prev}");
                prev = est;
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_buffer_rejected() {
        let stats = unclustered_stats();
        stats.estimate(&ScanQuery::range(0.5, 0));
    }

    /// The cross-validation grid: every traced value must be bit-identical
    /// to the untraced estimate — the `EXPLAIN ESTIMATE` protocol promise.
    #[test]
    fn traced_estimates_are_bit_identical_across_the_grid() {
        for stats in [unclustered_stats(), clustered_stats()] {
            for sigma in [0.0, 0.01, 0.05, 0.2, 1.0 / 3.0, 0.5, 0.9, 1.0] {
                for b in [1u64, 12, 30, 55, 100, 250] {
                    for s in [0.0, 0.01, 0.5, 1.0] {
                        let q = ScanQuery::range(sigma, b).with_sargable(s);
                        let plain = stats.estimate(&q);
                        let trace = stats.estimate_traced(&q);
                        assert_eq!(
                            plain.to_bits(),
                            trace.value.to_bits(),
                            "sigma={sigma} B={b} S={s}: {plain} != {}",
                            trace.value
                        );
                    }
                }
            }
        }
    }

    /// The trace names what actually happened: segment kinds, clamps,
    /// correction firing, and sargable application match the inputs.
    #[test]
    fn trace_records_the_decision_path() {
        let stats = unclustered_stats();
        // Inside the modeled range: interpolated (or an exact knot hit).
        let t = stats.estimate_traced(&ScanQuery::range(0.05, 50));
        assert!(!t.short_circuit);
        let fpf = t.fpf.as_ref().unwrap();
        assert!(fpf.segment.x0 <= 50.0 && 50.0 <= fpf.segment.x1);
        assert!(fpf.segments >= 1);
        assert!(t.correction.enabled && t.correction.fired);
        assert!(t.correction.term > 0.0);
        assert!(!t.sargable.applied);
        assert_eq!(t.scaled, 0.05 * fpf.value);

        // Past the modeled range: extrapolated above, clamped to A.
        let t = stats.estimate_traced(&ScanQuery::full(100_000));
        let fpf = t.fpf.as_ref().unwrap();
        assert_eq!(
            fpf.segment.kind,
            epfis_segfit::SegmentKind::ExtrapolatedAbove
        );
        assert_eq!(fpf.value, stats.full_scan_fetches(100_000));

        // Large sigma: correction computed but not fired.
        let t = stats.estimate_traced(&ScanQuery::range(0.5, 50));
        assert!(t.correction.enabled && !t.correction.fired);
        assert_eq!(t.correction.term, 0.0);

        // Sargable predicate applies and reduces.
        let t = stats.estimate_traced(&ScanQuery::range(0.5, 50).with_sargable(0.1));
        assert!(t.sargable.applied);
        assert!(t.sargable.factor < 1.0 && t.sargable.factor > 0.0);
        assert!(t.sargable.q_pages > 1.0);
    }
}
