//! Subprogram Est-IO (§4.2): query-compilation-time estimation.
//!
//! Given a catalog entry and a scan description, compute (Equation 1 plus
//! the sargable-predicate reduction):
//!
//! ```text
//! PF_B   = FPF approximation evaluated at B (clamped into [A, N])
//! φ      = max(1, B/T)                       (PhiMode::PaperMax, printed)
//! ν      = 1 if φ ≥ 3σ else 0
//! corr   = ν · min(1, φ/(6σ)) · (1 − C) · T(1 − (1 − 1/T)^{σN})
//! base   = σ · PF_B + corr
//! Q      = C σ T + (1 − C) min(T, σN)        (pages referenced)
//! k      = S σ N                             (qualifying records)
//! F      = (1 − (1 − 1/Q)^k) · base          (sargable reduction)
//! ```
//!
//! The correction exists because linear scaling (`σ · PF_B`) assumes the
//! partial scan enjoys the same caching as the full scan; when `σ` is small,
//! the buffer never warms up and the scan behaves like Cardenas random
//! probing instead — weighted by how unclustered the index is (`1 − C`).

use crate::config::{EpfisConfig, PhiMode};
use crate::stats::IndexStatistics;
use epfis_estimators::occupancy::cardenas;
use epfis_estimators::traits::{PageFetchEstimator, ScanParams};

/// What the optimizer knows about a prospective scan when calling Est-IO.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanQuery {
    /// Selectivity `σ` of the start/stop conditions.
    pub selectivity: f64,
    /// Selectivity `S` of the index-sargable predicates (1.0 = none).
    pub sargable_selectivity: f64,
    /// Buffer pages `B` available to the scan (currently DBA-specified in
    /// the paper's system).
    pub buffer_pages: u64,
}

impl ScanQuery {
    /// A plain range scan (no sargable predicates).
    pub fn range(selectivity: f64, buffer_pages: u64) -> Self {
        ScanQuery {
            selectivity,
            sargable_selectivity: 1.0,
            buffer_pages,
        }
    }

    /// A full index scan.
    pub fn full(buffer_pages: u64) -> Self {
        Self::range(1.0, buffer_pages)
    }

    /// Builder: attach an index-sargable predicate selectivity.
    pub fn with_sargable(mut self, s: f64) -> Self {
        self.sargable_selectivity = s;
        self
    }

    /// Panics if the query is out of domain.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.selectivity),
            "selectivity must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.sargable_selectivity),
            "sargable selectivity must be in [0, 1]"
        );
        assert!(self.buffer_pages >= 1, "buffer must have at least one page");
    }
}

/// Estimates page fetches for `query` against `stats` (Subprogram Est-IO).
pub fn estimate(stats: &IndexStatistics, query: &ScanQuery, config: &EpfisConfig) -> f64 {
    query.validate();
    let sigma = query.selectivity;
    if sigma == 0.0 {
        return 0.0;
    }
    let t = stats.table_pages as f64;
    let n = stats.records as f64;
    let c = stats.clustering_factor;

    // Step 4: PF_B from the line-segment approximation.
    let pf_b = stats.full_scan_fetches(query.buffer_pages);

    // Step 5: scale by the start/stop selectivity.
    let mut est = sigma * pf_b;

    // Step 6: small-σ heuristic correction (Equation 1).
    if config.enable_correction {
        let ratio = query.buffer_pages as f64 / t;
        let phi = match config.phi_mode {
            PhiMode::PaperMax => ratio.max(1.0),
            PhiMode::ProseMin => ratio.min(1.0),
        };
        let nu = if phi >= 3.0 * sigma { 1.0 } else { 0.0 };
        if nu > 0.0 {
            let damping = (phi / (6.0 * sigma)).min(1.0);
            est += damping * (1.0 - c) * cardenas(t, sigma * n);
        }
    }

    // Step 7: index-sargable predicate reduction (urn model).
    if config.enable_sargable_model && query.sargable_selectivity < 1.0 {
        let q_pages = c * sigma * t + (1.0 - c) * t.min(sigma * n);
        let k = query.sargable_selectivity * sigma * n;
        let factor = if q_pages <= 1.0 {
            // A single referenced page is fetched iff any record qualifies.
            if k > 0.0 {
                1.0
            } else {
                0.0
            }
        } else {
            1.0 - (1.0 - 1.0 / q_pages).powf(k)
        };
        est *= factor;
    }

    est.max(0.0)
}

/// Adapter so EPFIS can stand in the same benchmark harness slot as the
/// baseline estimators.
#[derive(Debug, Clone)]
pub struct EpfisEstimator {
    stats: IndexStatistics,
}

impl EpfisEstimator {
    /// Wraps a catalog entry.
    pub fn new(stats: IndexStatistics) -> Self {
        EpfisEstimator { stats }
    }

    /// The wrapped statistics.
    pub fn stats(&self) -> &IndexStatistics {
        &self.stats
    }
}

impl PageFetchEstimator for EpfisEstimator {
    fn name(&self) -> &'static str {
        "EPFIS"
    }

    fn estimate(&self, params: &ScanParams) -> f64 {
        let query = ScanQuery {
            selectivity: params.selectivity,
            sargable_selectivity: params.sargable_selectivity,
            buffer_pages: params.buffer_pages,
        };
        self.stats.estimate(&query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EpfisConfig;
    use crate::lru_fit::LruFit;
    use epfis_lrusim::KeyedTrace;

    /// An unclustered trace: 2000 records over 100 pages, pseudo-random.
    fn unclustered_stats() -> IndexStatistics {
        let pages: Vec<u32> = (0..2000u32)
            .map(|i| i.wrapping_mul(2654435761) % 100)
            .collect();
        let trace = KeyedTrace::all_distinct(pages, 100);
        LruFit::new(EpfisConfig::default()).collect(&trace)
    }

    /// A clustered trace: sequential fill.
    fn clustered_stats() -> IndexStatistics {
        let pages: Vec<u32> = (0..2000u32).map(|i| i / 20).collect();
        let trace = KeyedTrace::all_distinct(pages, 100);
        LruFit::new(EpfisConfig::default()).collect(&trace)
    }

    #[test]
    fn full_scan_estimate_equals_curve_value() {
        let stats = unclustered_stats();
        for b in [12u64, 40, 100] {
            let est = stats.estimate(&ScanQuery::full(b));
            // σ = 1 disables the correction (φ = 1 < 3) and the sargable
            // model (S = 1), so the estimate is PF_B itself.
            assert!((est - stats.full_scan_fetches(b)).abs() < 1e-9, "B={b}");
        }
    }

    #[test]
    fn zero_selectivity_estimates_zero() {
        let stats = unclustered_stats();
        assert_eq!(stats.estimate(&ScanQuery::range(0.0, 50)), 0.0);
    }

    #[test]
    fn estimates_are_within_hard_bounds() {
        let stats = unclustered_stats();
        for sigma in [0.01, 0.05, 0.2, 0.5, 0.9, 1.0] {
            for b in [12u64, 30, 70, 100] {
                let est = stats.estimate(&ScanQuery::range(sigma, b));
                assert!(est >= 0.0);
                assert!(
                    est <= stats.records as f64 + 1e-9,
                    "sigma={sigma} B={b}: {est}"
                );
            }
        }
    }

    #[test]
    fn correction_fires_only_for_small_sigma() {
        let stats = unclustered_stats();
        let with = stats.estimate(&ScanQuery::range(0.05, 100));
        let without = stats.estimate_with(
            &ScanQuery::range(0.05, 100),
            &EpfisConfig::default().without_correction(),
        );
        assert!(
            with > without,
            "small sigma on an unclustered index must be corrected upward"
        );
        // sigma > 1/3 disables it (phi = 1 < 3 sigma).
        let hi_with = stats.estimate(&ScanQuery::range(0.5, 100));
        let hi_without = stats.estimate_with(
            &ScanQuery::range(0.5, 100),
            &EpfisConfig::default().without_correction(),
        );
        assert!((hi_with - hi_without).abs() < 1e-12);
    }

    #[test]
    fn correction_vanishes_on_clustered_indexes() {
        let stats = clustered_stats();
        assert_eq!(stats.clustering_factor, 1.0);
        let with = stats.estimate(&ScanQuery::range(0.05, 100));
        let without = stats.estimate_with(
            &ScanQuery::range(0.05, 100),
            &EpfisConfig::default().without_correction(),
        );
        // (1 - C) = 0 kills the correction term.
        assert!((with - without).abs() < 1e-12);
    }

    #[test]
    fn damping_factor_caps_at_one() {
        // For very small sigma, min(1, phi/(6 sigma)) = 1: the correction is
        // the full (1-C)-weighted Cardenas estimate.
        let stats = unclustered_stats();
        let t = stats.table_pages as f64;
        let n = stats.records as f64;
        let c = stats.clustering_factor;
        let sigma = 0.01;
        let expected = sigma * stats.full_scan_fetches(50) + (1.0 - c) * cardenas(t, sigma * n);
        let est = stats.estimate(&ScanQuery::range(sigma, 50));
        assert!((est - expected).abs() < 1e-9);
    }

    #[test]
    fn prose_min_phi_suppresses_correction_for_tiny_buffers() {
        let stats = unclustered_stats();
        let cfg_min = EpfisConfig {
            phi_mode: PhiMode::ProseMin,
            ..EpfisConfig::default()
        };
        let sigma = 0.2;
        let b = 12u64; // B/T = 0.12 < 3 sigma = 0.6 -> nu = 0 under ProseMin
        let with_min = stats.estimate_with(&ScanQuery::range(sigma, b), &cfg_min);
        let uncorrected = stats.estimate_with(
            &ScanQuery::range(sigma, b),
            &EpfisConfig::default().without_correction(),
        );
        assert!((with_min - uncorrected).abs() < 1e-12);
        // Under the printed PaperMax reading the correction fires.
        let with_max = stats.estimate(&ScanQuery::range(sigma, b));
        assert!(with_max > with_min);
    }

    #[test]
    fn sargable_predicates_reduce_fetches() {
        let stats = unclustered_stats();
        let plain = stats.estimate(&ScanQuery::range(0.4, 50));
        let filtered = stats.estimate(&ScanQuery::range(0.4, 50).with_sargable(0.01));
        assert!(filtered < plain);
        assert!(filtered > 0.0);
    }

    #[test]
    fn sargable_selectivity_one_changes_nothing() {
        let stats = unclustered_stats();
        let a = stats.estimate(&ScanQuery::range(0.4, 50));
        let b = stats.estimate(&ScanQuery::range(0.4, 50).with_sargable(1.0));
        assert_eq!(a, b);
    }

    #[test]
    fn sargable_reduction_matches_urn_formula() {
        let stats = unclustered_stats();
        let q = ScanQuery::range(0.5, 50).with_sargable(0.1);
        let base = stats.estimate(&ScanQuery::range(0.5, 50));
        let t = stats.table_pages as f64;
        let n = stats.records as f64;
        let c = stats.clustering_factor;
        let q_pages = c * 0.5 * t + (1.0 - c) * t.min(0.5 * n);
        let k = 0.1 * 0.5 * n;
        let factor = 1.0 - (1.0 - 1.0 / q_pages).powf(k);
        assert!((stats.estimate(&q) - base * factor).abs() < 1e-9);
    }

    #[test]
    fn estimator_adapter_matches_direct_call() {
        let stats = unclustered_stats();
        let adapter = EpfisEstimator::new(stats.clone());
        let params = ScanParams::range(0.3, 40);
        let direct = stats.estimate(&ScanQuery::range(0.3, 40));
        assert_eq!(adapter.estimate(&params), direct);
        assert_eq!(adapter.name(), "EPFIS");
    }

    #[test]
    fn larger_buffers_never_increase_the_estimate() {
        let stats = unclustered_stats();
        for sigma in [0.05, 0.3, 1.0] {
            let mut prev = f64::INFINITY;
            for b in [12u64, 25, 50, 75, 100] {
                let est = stats.estimate(&ScanQuery::range(sigma, b));
                assert!(est <= prev + 1e-9, "sigma={sigma} B={b}: {est} > {prev}");
                prev = est;
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_buffer_rejected() {
        let stats = unclustered_stats();
        stats.estimate(&ScanQuery::range(0.5, 0));
    }
}
