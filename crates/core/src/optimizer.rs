//! A miniature cost-based access-path selector (§2's setting).
//!
//! The paper motivates EPFIS with the optimizer's choice among the basic
//! access plans for a single-table query:
//!
//! 1. **Table scan** — fetch all `T` pages (buffer-independent), evaluate
//!    predicates, sort afterwards if an order is required.
//! 2. **Partial index scan** on a relevant index — fetch `F` data pages as
//!    estimated by Est-IO, sort afterwards unless the index already delivers
//!    the required order.
//! 3. **Full index scan** on the ordering index — fetch `F(σ=1, S=σ_pred)`
//!    pages, no sort.
//!
//! "The number of basic access plans to be considered is the number of
//! relevant indexes plus one (for the table scan)." (The paper explicitly
//! assumes "no RID-list sort, union, or intersection before the data
//! records are fetched" for those basic plans; we additionally cost the
//! RID-sorted plan from §6's future work — see [`crate::ridlist`] — which
//! trades the key-ordered output for buffer-independent, once-per-page
//! fetching.)
//!
//! The cost model is deliberately simple and I/O-dominated: page fetches
//! plus a classic `2 · pages_out` external-sort charge when a sort is
//! needed. The point of the example is to show estimate *differences*
//! changing plan choice, not to model a production costing stack.

use crate::est_io::ScanQuery;
use crate::stats::IndexStatistics;

/// A candidate index for the query.
#[derive(Debug, Clone)]
pub struct IndexCandidate {
    /// Index name (for reports and order matching).
    pub name: String,
    /// Its catalog statistics.
    pub stats: IndexStatistics,
    /// Selectivity of the start/stop conditions this index supports, if the
    /// query's predicates form a contiguous range on its major column.
    pub range_selectivity: Option<f64>,
    /// Selectivity of the query's index-sargable predicates on this index
    /// (1.0 = none).
    pub sargable_selectivity: f64,
}

/// A single-table query as the selector sees it.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Fraction of records the query outputs (for sort sizing).
    pub output_selectivity: f64,
    /// Name of the index whose order the query requires, if any.
    pub required_order: Option<String>,
    /// Candidate indexes.
    pub candidates: Vec<IndexCandidate>,
    /// Whether RID-sorted plans (§6 future work) are enumerated alongside
    /// the paper's basic plans.
    pub consider_rid_plans: bool,
}

/// One costed access plan.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPlan {
    /// Scan the heap file.
    TableScan {
        /// Whether a sort is appended.
        sort: bool,
    },
    /// Range-restricted scan of the named index.
    PartialIndexScan {
        /// Index name.
        index: String,
        /// Whether a sort is appended.
        sort: bool,
    },
    /// Full scan of the named index (for its order).
    FullIndexScan {
        /// Index name.
        index: String,
    },
    /// Range scan of the named index with the qualifying RIDs sorted by
    /// page before fetching (§6 future work; see [`crate::ridlist`]).
    RidSortedIndexScan {
        /// Index name.
        index: String,
        /// Whether a sort of the *records* is appended (RID order destroys
        /// key order).
        sort: bool,
    },
}

impl std::fmt::Display for AccessPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessPlan::TableScan { sort } => {
                write!(f, "table scan{}", if *sort { " + sort" } else { "" })
            }
            AccessPlan::PartialIndexScan { index, sort } => {
                write!(
                    f,
                    "partial scan on {index}{}",
                    if *sort { " + sort" } else { "" }
                )
            }
            AccessPlan::FullIndexScan { index } => write!(f, "full scan on {index}"),
            AccessPlan::RidSortedIndexScan { index, sort } => {
                write!(
                    f,
                    "rid-sorted scan on {index}{}",
                    if *sort { " + sort" } else { "" }
                )
            }
        }
    }
}

/// A plan with its estimated I/O cost (in page fetches).
#[derive(Debug, Clone, PartialEq)]
pub struct CostedPlan {
    /// The plan.
    pub plan: AccessPlan,
    /// Estimated page fetches, including any sort charge.
    pub io_cost: f64,
}

/// The selector: table shape + buffer budget.
#[derive(Debug, Clone, Copy)]
pub struct AccessPathSelector {
    /// Pages in the table (`T`).
    pub table_pages: u64,
    /// Records in the table (`N`).
    pub records: u64,
    /// Buffer pages available to the scan (`B`).
    pub buffer_pages: u64,
}

impl AccessPathSelector {
    /// External-sort I/O charge for `records_out` records: write + read one
    /// spill pass over the output (`2 · ⌈records_out / R⌉`), zero when the
    /// output fits in the buffer.
    pub fn sort_cost(&self, records_out: f64) -> f64 {
        let r = self.records as f64 / self.table_pages as f64;
        let pages_out = (records_out / r).ceil();
        if pages_out <= self.buffer_pages as f64 {
            0.0
        } else {
            2.0 * pages_out
        }
    }

    /// Enumerates and costs every basic access plan, best (cheapest) first.
    /// Ties preserve enumeration order (table scan, then candidates).
    pub fn enumerate(&self, query: &QuerySpec) -> Vec<CostedPlan> {
        let records_out = query.output_selectivity * self.records as f64;
        let needs_order = query.required_order.is_some();
        let mut plans = Vec::new();

        // Plan 1: table scan (+ sort).
        plans.push(CostedPlan {
            plan: AccessPlan::TableScan { sort: needs_order },
            io_cost: self.table_pages as f64
                + if needs_order {
                    self.sort_cost(records_out)
                } else {
                    0.0
                },
        });

        for cand in &query.candidates {
            let delivers_order = query.required_order.as_deref() == Some(cand.name.as_str());
            // Plan 2: partial scan where a range restriction exists.
            if let Some(sigma) = cand.range_selectivity {
                let q = ScanQuery {
                    selectivity: sigma,
                    sargable_selectivity: cand.sargable_selectivity,
                    buffer_pages: self.buffer_pages,
                };
                let sort = needs_order && !delivers_order;
                plans.push(CostedPlan {
                    plan: AccessPlan::PartialIndexScan {
                        index: cand.name.clone(),
                        sort,
                    },
                    io_cost: cand.stats.estimate(&q)
                        + if sort {
                            self.sort_cost(records_out)
                        } else {
                            0.0
                        },
                });
                if query.consider_rid_plans {
                    // RID-sorted variant: buffer-independent Yao cost, but
                    // physical output order always needs a sort when any
                    // order is required.
                    let qualifying =
                        (sigma * cand.sargable_selectivity * self.records as f64).round() as u64;
                    let fetches = crate::ridlist::sorted_rid_fetches(
                        self.table_pages,
                        self.records,
                        qualifying,
                    );
                    plans.push(CostedPlan {
                        plan: AccessPlan::RidSortedIndexScan {
                            index: cand.name.clone(),
                            sort: needs_order,
                        },
                        io_cost: fetches
                            + if needs_order {
                                self.sort_cost(records_out)
                            } else {
                                0.0
                            },
                    });
                }
            } else if delivers_order {
                // Plan 3: full scan purely for order.
                let q = ScanQuery::full(self.buffer_pages).with_sargable(cand.sargable_selectivity);
                plans.push(CostedPlan {
                    plan: AccessPlan::FullIndexScan {
                        index: cand.name.clone(),
                    },
                    io_cost: cand.stats.estimate(&q),
                });
            }
        }
        plans.sort_by(|a, b| a.io_cost.partial_cmp(&b.io_cost).unwrap());
        plans
    }

    /// The cheapest plan.
    pub fn choose(&self, query: &QuerySpec) -> CostedPlan {
        self.enumerate(query)
            .into_iter()
            .next()
            .expect("the table scan plan always exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EpfisConfig;
    use crate::lru_fit::LruFit;
    use epfis_lrusim::KeyedTrace;

    fn make_stats(clustered: bool) -> IndexStatistics {
        let pages: Vec<u32> = if clustered {
            (0..4000u32).map(|i| i / 20).collect()
        } else {
            (0..4000u32)
                .map(|i| i.wrapping_mul(2654435761) % 200)
                .collect()
        };
        let trace = KeyedTrace::all_distinct(pages, 200);
        LruFit::new(EpfisConfig::default()).collect(&trace)
    }

    fn selector() -> AccessPathSelector {
        AccessPathSelector {
            table_pages: 200,
            records: 4000,
            buffer_pages: 40,
        }
    }

    fn candidate(name: &str, clustered: bool, sigma: Option<f64>) -> IndexCandidate {
        IndexCandidate {
            name: name.into(),
            stats: make_stats(clustered),
            range_selectivity: sigma,
            sargable_selectivity: 1.0,
        }
    }

    #[test]
    fn selective_clustered_index_beats_table_scan() {
        let query = QuerySpec {
            output_selectivity: 0.02,
            required_order: None,
            candidates: vec![candidate("ix_clustered", true, Some(0.02))],
            consider_rid_plans: false,
        };
        let best = selector().choose(&query);
        assert!(matches!(
            best.plan,
            AccessPlan::PartialIndexScan { ref index, sort: false } if index == "ix_clustered"
        ));
        assert!(best.io_cost < 200.0);
    }

    #[test]
    fn unselective_unclustered_index_loses_to_table_scan() {
        let query = QuerySpec {
            output_selectivity: 0.9,
            required_order: None,
            candidates: vec![candidate("ix_rand", false, Some(0.9))],
            consider_rid_plans: false,
        };
        let best = selector().choose(&query);
        assert_eq!(best.plan, AccessPlan::TableScan { sort: false });
        assert_eq!(best.io_cost, 200.0);
    }

    #[test]
    fn order_requirement_charges_sort_to_table_scan() {
        let query = QuerySpec {
            output_selectivity: 1.0,
            required_order: Some("ix_ord".into()),
            candidates: vec![candidate("ix_ord", true, None)],
            consider_rid_plans: false,
        };
        let plans = selector().enumerate(&query);
        let table = plans
            .iter()
            .find(|p| matches!(p.plan, AccessPlan::TableScan { .. }))
            .unwrap();
        assert!(matches!(table.plan, AccessPlan::TableScan { sort: true }));
        assert!(table.io_cost > 200.0, "sort charge applies");
        // The clustered full index scan avoids the sort and wins.
        let best = &plans[0];
        assert!(matches!(
            best.plan,
            AccessPlan::FullIndexScan { ref index } if index == "ix_ord"
        ));
    }

    #[test]
    fn partial_scan_on_ordering_index_skips_sort() {
        let query = QuerySpec {
            output_selectivity: 0.1,
            required_order: Some("ix".into()),
            candidates: vec![candidate("ix", true, Some(0.1))],
            consider_rid_plans: false,
        };
        let plans = selector().enumerate(&query);
        let partial = plans
            .iter()
            .find(|p| matches!(p.plan, AccessPlan::PartialIndexScan { .. }))
            .unwrap();
        assert!(matches!(
            partial.plan,
            AccessPlan::PartialIndexScan { sort: false, .. }
        ));
    }

    #[test]
    fn plan_count_is_relevant_indexes_plus_one() {
        let query = QuerySpec {
            output_selectivity: 0.2,
            required_order: None,
            candidates: vec![
                candidate("a", true, Some(0.2)),
                candidate("b", false, Some(0.2)),
                // Irrelevant: no range, no order.
                candidate("c", false, None),
            ],
            consider_rid_plans: false,
        };
        let plans = selector().enumerate(&query);
        assert_eq!(plans.len(), 3, "table scan + two relevant indexes");
    }

    #[test]
    fn rid_sorted_plan_wins_on_unclustered_tiny_buffer() {
        // Unclustered index, thrashing buffer: the basic partial scan
        // re-fetches pages; the RID-sorted plan caps at Yao and wins.
        let sel = AccessPathSelector {
            table_pages: 200,
            records: 4000,
            buffer_pages: 12,
        };
        let query = QuerySpec {
            output_selectivity: 0.35,
            required_order: None,
            candidates: vec![candidate("ix", false, Some(0.35))],
            consider_rid_plans: true,
        };
        let plans = sel.enumerate(&query);
        assert_eq!(plans.len(), 3, "table + partial + rid-sorted");
        let best = &plans[0];
        assert!(matches!(
            best.plan,
            AccessPlan::RidSortedIndexScan { sort: false, .. }
        ));
        // Yao bound: at most T pages.
        assert!(best.io_cost <= 200.0 + 1e-9);
    }

    #[test]
    fn rid_sorted_plan_pays_a_sort_when_order_is_required() {
        let sel = selector();
        let query = QuerySpec {
            output_selectivity: 0.5,
            required_order: Some("ix".into()),
            candidates: vec![candidate("ix", false, Some(0.5))],
            consider_rid_plans: true,
        };
        let plans = sel.enumerate(&query);
        let rid = plans
            .iter()
            .find(|p| matches!(p.plan, AccessPlan::RidSortedIndexScan { .. }))
            .unwrap();
        // Even on its own ordering index, RID order destroys key order.
        assert!(matches!(
            rid.plan,
            AccessPlan::RidSortedIndexScan { sort: true, .. }
        ));
        assert!(rid.io_cost > sel.sort_cost(2000.0));
    }

    #[test]
    fn rid_plans_absent_when_not_requested() {
        let query = QuerySpec {
            output_selectivity: 0.3,
            required_order: None,
            candidates: vec![candidate("ix", false, Some(0.3))],
            consider_rid_plans: false,
        };
        let plans = selector().enumerate(&query);
        assert!(plans
            .iter()
            .all(|p| !matches!(p.plan, AccessPlan::RidSortedIndexScan { .. })));
    }

    #[test]
    fn small_sorts_are_free_in_buffer() {
        let s = selector();
        assert_eq!(s.sort_cost(100.0), 0.0); // 5 pages out, 40-page buffer
        assert!(s.sort_cost(4000.0) > 0.0); // 200 pages out
    }

    #[test]
    fn costs_are_sorted_ascending() {
        let query = QuerySpec {
            output_selectivity: 0.3,
            required_order: None,
            candidates: vec![
                candidate("a", true, Some(0.3)),
                candidate("b", false, Some(0.3)),
            ],
            consider_rid_plans: false,
        };
        let plans = selector().enumerate(&query);
        for w in plans.windows(2) {
            assert!(w[0].io_cost <= w[1].io_cost);
        }
    }

    #[test]
    fn buffer_size_can_flip_the_choice() {
        // An unclustered index scan at sigma=0.35 thrashes with a small
        // buffer but beats the table scan with a big one.
        let stats = make_stats(false);
        let query = |b: u64| {
            (
                AccessPathSelector {
                    table_pages: 200,
                    records: 4000,
                    buffer_pages: b,
                },
                QuerySpec {
                    output_selectivity: 0.35,
                    required_order: None,
                    candidates: vec![IndexCandidate {
                        name: "ix".into(),
                        stats: stats.clone(),
                        range_selectivity: Some(0.35),
                        sargable_selectivity: 1.0,
                    }],
                    consider_rid_plans: false,
                },
            )
        };
        let (sel_small, q_small) = query(12);
        let (sel_big, q_big) = query(200);
        let small_best = sel_small.choose(&q_small);
        let big_best = sel_big.choose(&q_big);
        assert_eq!(small_best.plan, AccessPlan::TableScan { sort: false });
        assert!(matches!(big_best.plan, AccessPlan::PartialIndexScan { .. }));
    }
}
