//! The system catalog: named [`IndexStatistics`] entries with a versioned,
//! human-readable text codec.
//!
//! Section 4.1 stores the segment end-points "in a system catalog entry
//! associated with the index". Real catalogs are inspectable and survive
//! restarts, so this module provides a stable text format (one attribute per
//! line) rather than an opaque binary dump; floating-point fields use Rust's
//! shortest round-tripping decimal representation, so
//! `from_text(to_text(c)) == c` exactly.

use crate::config::{EpfisConfig, GridStrategy, PhiMode};
use crate::stats::IndexStatistics;
use epfis_segfit::PiecewiseLinear;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Codec / lookup errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// The header line is missing or names an unsupported version.
    BadHeader(String),
    /// A line could not be parsed.
    Parse {
        /// 1-based line number within the input text.
        line: usize,
        /// What was wrong.
        message: String,
        /// The offending line, verbatim.
        text: String,
    },
    /// An entry ended before all required fields were seen.
    IncompleteEntry(String),
    /// An index name contains characters the codec cannot represent.
    InvalidName(String),
    /// Two entries share a name.
    DuplicateName(String),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::BadHeader(h) => write!(f, "bad catalog header: {h:?}"),
            CatalogError::Parse {
                line,
                message,
                text,
            } => {
                write!(f, "parse error at line {line}: {message} (in {text:?})")
            }
            CatalogError::IncompleteEntry(name) => {
                write!(f, "incomplete catalog entry {name:?}")
            }
            CatalogError::InvalidName(name) => write!(f, "invalid index name {name:?}"),
            CatalogError::DuplicateName(name) => write!(f, "duplicate index name {name:?}"),
        }
    }
}

impl std::error::Error for CatalogError {}

const HEADER: &str = "epfis-catalog v1";

/// A named collection of per-index EPFIS statistics.
///
/// ```
/// use epfis::{Catalog, EpfisConfig, LruFit};
/// use epfis_lrusim::KeyedTrace;
///
/// let trace = KeyedTrace::all_distinct((0..600u32).map(|i| i % 60).collect(), 60);
/// let stats = LruFit::new(EpfisConfig::default()).collect(&trace);
///
/// let mut catalog = Catalog::new();
/// catalog.insert("orders.customer_id", stats).unwrap();
///
/// // The text codec round-trips exactly — estimates included.
/// let restored = Catalog::from_text(&catalog.to_text()).unwrap();
/// assert_eq!(restored, catalog);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Catalog {
    entries: BTreeMap<String, IndexStatistics>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts (or replaces) an entry. Names may not contain whitespace or
    /// control characters.
    pub fn insert(
        &mut self,
        name: impl Into<String>,
        stats: IndexStatistics,
    ) -> Result<Option<IndexStatistics>, CatalogError> {
        let name = name.into();
        if name.is_empty() || name.chars().any(|c| c.is_whitespace() || c.is_control()) {
            return Err(CatalogError::InvalidName(name));
        }
        Ok(self.entries.insert(name, stats))
    }

    /// Looks an entry up by name.
    pub fn get(&self, name: &str) -> Option<&IndexStatistics> {
        self.entries.get(name)
    }

    /// Removes an entry by name.
    pub fn remove(&mut self, name: &str) -> Option<IndexStatistics> {
        self.entries.remove(name)
    }

    /// Iterates entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &IndexStatistics)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Serializes to the versioned text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        for (name, s) in &self.entries {
            writeln!(out, "index {name}").unwrap();
            writeln!(out, "table_pages {}", s.table_pages).unwrap();
            writeln!(out, "records {}", s.records).unwrap();
            writeln!(out, "distinct_keys {}", s.distinct_keys).unwrap();
            writeln!(out, "distinct_pages {}", s.distinct_pages).unwrap();
            writeln!(out, "clustering_factor {}", s.clustering_factor).unwrap();
            writeln!(out, "b_min {}", s.b_min).unwrap();
            writeln!(out, "b_max {}", s.b_max).unwrap();
            let knots: Vec<String> = s
                .fpf
                .knots()
                .iter()
                .map(|(x, y)| format!("{x}:{y}"))
                .collect();
            writeln!(out, "fpf {}", knots.join(" ")).unwrap();
            let grid = match s.config.grid {
                GridStrategy::Arithmetic => "arith".to_string(),
                GridStrategy::Geometric { points } => format!("geom:{points}"),
            };
            let phi = match s.config.phi_mode {
                PhiMode::PaperMax => "max",
                PhiMode::ProseMin => "min",
            };
            let range = match s.config.modeling_range {
                None => "auto".to_string(),
                Some((lo, hi)) => format!("{lo},{hi}"),
            };
            writeln!(
                out,
                "config b_sml={} segments={} grid={} phi={} corr={} sarg={} range={}",
                s.config.b_sml,
                s.config.segments,
                grid,
                phi,
                u8::from(s.config.enable_correction),
                u8::from(s.config.enable_sargable_model),
                range
            )
            .unwrap();
            writeln!(out, "end").unwrap();
        }
        out
    }

    /// Parses the text format back into a catalog.
    pub fn from_text(text: &str) -> Result<Catalog, CatalogError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, h)) if h.trim() == HEADER => {}
            other => {
                return Err(CatalogError::BadHeader(
                    other.map(|(_, h)| h.to_string()).unwrap_or_default(),
                ))
            }
        }
        let mut catalog = Catalog::new();
        let mut current: Option<(String, EntryBuilder)> = None;
        for (idx, raw) in lines {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            let (keyword, rest) = line.split_once(' ').unwrap_or((line, ""));
            match keyword {
                "index" => {
                    if current.is_some() {
                        return Err(CatalogError::Parse {
                            line: line_no,
                            message: "new entry before previous 'end'".into(),
                            text: raw.to_string(),
                        });
                    }
                    if rest.is_empty() {
                        return Err(CatalogError::InvalidName(rest.to_string()));
                    }
                    current = Some((rest.to_string(), EntryBuilder::default()));
                }
                "end" => {
                    let (name, builder) = current.take().ok_or_else(|| CatalogError::Parse {
                        line: line_no,
                        message: "'end' without entry".into(),
                        text: raw.to_string(),
                    })?;
                    let stats = builder
                        .build()
                        .ok_or_else(|| CatalogError::IncompleteEntry(name.clone()))?;
                    if catalog.get(&name).is_some() {
                        return Err(CatalogError::DuplicateName(name));
                    }
                    catalog.insert(name, stats)?;
                }
                _ => {
                    let (_, builder) = current.as_mut().ok_or_else(|| CatalogError::Parse {
                        line: line_no,
                        message: format!("field {keyword:?} outside entry"),
                        text: raw.to_string(),
                    })?;
                    builder
                        .field(keyword, rest)
                        .map_err(|message| CatalogError::Parse {
                            line: line_no,
                            message,
                            text: raw.to_string(),
                        })?;
                }
            }
        }
        if let Some((name, _)) = current {
            return Err(CatalogError::IncompleteEntry(name));
        }
        Ok(catalog)
    }

    /// Writes the catalog to a file atomically (see [`write_atomic`]): a
    /// crash or failure mid-save leaves any previous file intact.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        write_atomic(path.as_ref(), &self.to_text())
    }

    /// Reads a catalog from a file.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Catalog> {
        let text = std::fs::read_to_string(path)?;
        Catalog::from_text(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[derive(Default)]
struct EntryBuilder {
    table_pages: Option<u64>,
    records: Option<u64>,
    distinct_keys: Option<u64>,
    distinct_pages: Option<u64>,
    clustering_factor: Option<f64>,
    b_min: Option<u64>,
    b_max: Option<u64>,
    fpf: Option<PiecewiseLinear>,
    config: Option<EpfisConfig>,
}

impl EntryBuilder {
    fn field(&mut self, keyword: &str, rest: &str) -> Result<(), String> {
        match keyword {
            "table_pages" => self.table_pages = Some(parse(rest)?),
            "records" => self.records = Some(parse(rest)?),
            "distinct_keys" => self.distinct_keys = Some(parse(rest)?),
            "distinct_pages" => self.distinct_pages = Some(parse(rest)?),
            "clustering_factor" => self.clustering_factor = Some(parse(rest)?),
            "b_min" => self.b_min = Some(parse(rest)?),
            "b_max" => self.b_max = Some(parse(rest)?),
            "fpf" => {
                let mut knots = Vec::new();
                for pair in rest.split_whitespace() {
                    let (x, y) = pair
                        .split_once(':')
                        .ok_or_else(|| format!("bad knot {pair:?}"))?;
                    knots.push((parse::<f64>(x)?, parse::<f64>(y)?));
                }
                if knots.is_empty() {
                    return Err("empty fpf knot list".into());
                }
                self.fpf = Some(PiecewiseLinear::new(knots));
            }
            "config" => {
                let mut cfg = EpfisConfig::default();
                for kv in rest.split_whitespace() {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| format!("bad config item {kv:?}"))?;
                    match k {
                        "b_sml" => cfg.b_sml = parse(v)?,
                        "segments" => cfg.segments = parse(v)?,
                        "grid" => {
                            cfg.grid = if v == "arith" {
                                GridStrategy::Arithmetic
                            } else if let Some(p) = v.strip_prefix("geom:") {
                                GridStrategy::Geometric { points: parse(p)? }
                            } else {
                                return Err(format!("bad grid {v:?}"));
                            }
                        }
                        "phi" => {
                            cfg.phi_mode = match v {
                                "max" => PhiMode::PaperMax,
                                "min" => PhiMode::ProseMin,
                                _ => return Err(format!("bad phi {v:?}")),
                            }
                        }
                        "corr" => cfg.enable_correction = parse::<u8>(v)? != 0,
                        "sarg" => cfg.enable_sargable_model = parse::<u8>(v)? != 0,
                        "range" => {
                            cfg.modeling_range = if v == "auto" {
                                None
                            } else {
                                let (lo, hi) = v
                                    .split_once(',')
                                    .ok_or_else(|| format!("bad range {v:?}"))?;
                                Some((parse(lo)?, parse(hi)?))
                            }
                        }
                        _ => return Err(format!("unknown config key {k:?}")),
                    }
                }
                self.config = Some(cfg);
            }
            _ => return Err(format!("unknown field {keyword:?}")),
        }
        Ok(())
    }

    fn build(self) -> Option<IndexStatistics> {
        Some(IndexStatistics {
            table_pages: self.table_pages?,
            records: self.records?,
            distinct_keys: self.distinct_keys?,
            distinct_pages: self.distinct_pages?,
            clustering_factor: self.clustering_factor?,
            b_min: self.b_min?,
            b_max: self.b_max?,
            fpf: self.fpf?,
            config: self.config?,
        })
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("cannot parse {s:?}: {e}"))
}

/// Writes `contents` to `path` atomically: the bytes go to a temporary file
/// in the same directory (same filesystem, so the rename cannot degrade to a
/// copy), are fsynced, and the temp file is renamed over `path`. A reader —
/// or a crash — at any instant sees either the complete old file or the
/// complete new one, never a torn write.
pub fn write_atomic(path: &std::path::Path, contents: &str) -> std::io::Result<()> {
    write_atomic_impl(path, contents, FailPoint::None)
}

/// Crash-injection points for the fault-injection tests: each variant dies
/// at a different stage of the write-temp / fsync / rename / dir-sync
/// sequence, so the tests can assert what survives each kind of crash.
#[cfg_attr(not(test), allow(dead_code))]
#[derive(Clone, Copy, PartialEq, Eq)]
enum FailPoint {
    /// No injected failure (the production path).
    None,
    /// Die after the temp file is durable but before the rename: the old
    /// file must survive byte-identical.
    BeforeRename,
    /// Die after the rename but before the directory sync: the new name
    /// is in place but not yet guaranteed durable, and the caller must
    /// see the error.
    BeforeDirSync,
}

/// Durably records the rename in the directory's entry table. The temp
/// file's own fsync makes the *bytes* durable, not the *name*: on a crash
/// between rename and directory sync, ext4/XFS may replay the journal
/// without the new entry and resurrect the old file. Directories cannot
/// be opened for syncing on all platforms; where they cannot, the rename
/// is as durable as the OS makes it.
fn sync_parent_dir(dir: &std::path::Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        std::fs::File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

fn write_atomic_impl(
    path: &std::path::Path,
    contents: &str,
    fail: FailPoint,
) -> std::io::Result<()> {
    use std::io::Write as _;
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let file_name = path.file_name().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
    })?;
    let tmp_name = format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
        if fail == FailPoint::BeforeRename {
            return Err(std::io::Error::other("injected failure before rename"));
        }
        std::fs::rename(&tmp, path)?;
        if fail == FailPoint::BeforeDirSync {
            return Err(std::io::Error::other("injected failure before dir sync"));
        }
        if let Some(d) = dir {
            sync_parent_dir(d)?;
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru_fit::LruFit;
    use epfis_lrusim::KeyedTrace;

    fn stats(seed: u32) -> IndexStatistics {
        let pages: Vec<u32> = (0..1500u32)
            .map(|i| (i.wrapping_mul(2654435761).wrapping_add(seed)) % 120)
            .collect();
        let trace = KeyedTrace::all_distinct(pages, 120);
        LruFit::new(EpfisConfig::default()).collect(&trace)
    }

    #[test]
    fn round_trip_is_exact() {
        let mut c = Catalog::new();
        c.insert("orders.customer_id", stats(1)).unwrap();
        c.insert("orders.order_date", stats(2)).unwrap();
        let text = c.to_text();
        let back = Catalog::from_text(&text).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn round_trip_preserves_estimates_exactly() {
        let mut c = Catalog::new();
        c.insert("ix", stats(3)).unwrap();
        let back = Catalog::from_text(&c.to_text()).unwrap();
        let q = crate::ScanQuery::range(0.123, 37).with_sargable(0.4);
        assert_eq!(
            c.get("ix").unwrap().estimate(&q),
            back.get("ix").unwrap().estimate(&q)
        );
    }

    #[test]
    fn non_default_config_round_trips() {
        let pages: Vec<u32> = (0..600u32).map(|i| i % 60).collect();
        let trace = KeyedTrace::all_distinct(pages, 60);
        let cfg = EpfisConfig::default()
            .with_segments(4)
            .with_grid(GridStrategy::Geometric { points: 9 })
            .with_modeling_range(12, 50)
            .without_correction();
        let s = LruFit::new(cfg).collect(&trace);
        let mut c = Catalog::new();
        c.insert("geo", s).unwrap();
        let back = Catalog::from_text(&c.to_text()).unwrap();
        assert_eq!(back, c);
        assert_eq!(
            back.get("geo").unwrap().config.modeling_range,
            Some((12, 50))
        );
    }

    #[test]
    fn crud_operations() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.insert("a", stats(1)).unwrap();
        assert!(
            c.insert("a", stats(2)).unwrap().is_some(),
            "replace returns old"
        );
        assert_eq!(c.len(), 1);
        assert!(c.get("a").is_some());
        assert!(c.remove("a").is_some());
        assert!(c.get("a").is_none());
    }

    #[test]
    fn names_with_whitespace_rejected() {
        let mut c = Catalog::new();
        assert!(matches!(
            c.insert("has space", stats(1)),
            Err(CatalogError::InvalidName(_))
        ));
        assert!(matches!(
            c.insert("", stats(1)),
            Err(CatalogError::InvalidName(_))
        ));
    }

    #[test]
    fn bad_header_rejected() {
        assert!(matches!(
            Catalog::from_text("something else\n"),
            Err(CatalogError::BadHeader(_))
        ));
        assert!(matches!(
            Catalog::from_text(""),
            Err(CatalogError::BadHeader(_))
        ));
    }

    #[test]
    fn truncated_entry_rejected() {
        let mut c = Catalog::new();
        c.insert("ix", stats(1)).unwrap();
        let text = c.to_text();
        // Drop the trailing "end" line.
        let truncated = text.trim_end().trim_end_matches("end");
        assert!(matches!(
            Catalog::from_text(truncated),
            Err(CatalogError::IncompleteEntry(_))
        ));
    }

    #[test]
    fn missing_field_rejected() {
        let text = format!("{HEADER}\nindex ix\ntable_pages 10\nend\n");
        assert!(matches!(
            Catalog::from_text(&text),
            Err(CatalogError::IncompleteEntry(_))
        ));
    }

    #[test]
    fn garbage_field_rejected_with_line_number_and_text() {
        let text = format!("{HEADER}\nindex ix\nwat 7\nend\n");
        match Catalog::from_text(&text) {
            Err(CatalogError::Parse { line, text, .. }) => {
                assert_eq!(line, 3);
                assert_eq!(text, "wat 7");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn parse_error_display_names_the_offending_line() {
        let text = format!("{HEADER}\nindex ix\ntable_pages eleven\nend\n");
        let err = Catalog::from_text(&text).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 3"), "{msg}");
        assert!(msg.contains("table_pages eleven"), "{msg}");
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = Catalog::new();
        c.insert("ix", stats(1)).unwrap();
        let entry: String = c
            .to_text()
            .lines()
            .skip(1)
            .map(|l| format!("{l}\n"))
            .collect();
        let doubled = format!("{HEADER}\n{entry}{entry}");
        assert!(matches!(
            Catalog::from_text(&doubled),
            Err(CatalogError::DuplicateName(_))
        ));
    }

    #[test]
    fn failed_atomic_write_preserves_the_old_file() {
        let dir = std::env::temp_dir().join("epfis-catalog-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.txt");
        let mut old = Catalog::new();
        old.insert("survivor", stats(1)).unwrap();
        old.save(&path).unwrap();

        // A write that dies after the temp file is written but before the
        // rename must leave the previous catalog byte-identical on disk and
        // clean up its temp file.
        let mut new = Catalog::new();
        new.insert("replacement", stats(2)).unwrap();
        let err = write_atomic_impl(&path, &new.to_text(), FailPoint::BeforeRename).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");

        let back = Catalog::load(&path).unwrap();
        assert_eq!(back, old, "old catalog must survive a failed save");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp file must be cleaned up");

        // Dying between rename and directory sync: the new bytes are in
        // place (rename happened) but the caller must still see the error —
        // the write is not durable until the directory entry is synced —
        // and no temp file may linger.
        let err = write_atomic_impl(&path, &new.to_text(), FailPoint::BeforeDirSync).unwrap_err();
        assert!(err.to_string().contains("dir sync"), "{err}");
        assert_eq!(Catalog::load(&path).unwrap(), new);
        let leftovers = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .count();
        assert_eq!(leftovers, 0, "temp file must be cleaned up");

        // The production path succeeds and syncs the directory for real.
        write_atomic(&path, &old.to_text()).unwrap();
        assert_eq!(Catalog::load(&path).unwrap(), old);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_atomic_creates_and_replaces() {
        let dir = std::env::temp_dir().join("epfis-catalog-atomic-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("file.txt");
        std::fs::remove_file(&path).ok();
        write_atomic(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        write_atomic(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_and_load_file() {
        let dir = std::env::temp_dir().join("epfis-catalog-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.txt");
        let mut c = Catalog::new();
        c.insert("ix", stats(5)).unwrap();
        c.save(&path).unwrap();
        let back = Catalog::load(&path).unwrap();
        assert_eq!(back, c);
        std::fs::remove_file(&path).ok();
    }
}
