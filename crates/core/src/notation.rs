//! The paper's Table 1 (notation) mapped onto this crate's types.
//!
//! | Paper | Meaning | Here |
//! |-------|---------|------|
//! | `B` | pages in the buffer pool | [`crate::ScanQuery::buffer_pages`] |
//! | `T` | pages in the table | [`crate::IndexStatistics::table_pages`] |
//! | `N` | records in the table | [`crate::IndexStatistics::records`] |
//! | `I` | distinct values in the index | [`crate::IndexStatistics::distinct_keys`] |
//! | `A` | data pages *accessed* by the scan | [`crate::IndexStatistics::distinct_pages`]; `epfis_lrusim::FetchCurve::cold` |
//! | `F` | data pages *fetched* by the scan | the return value of [`crate::est_io::estimate`]; ground truth from `epfis_lrusim` |
//! | `σ` | selectivity of start/stop conditions | [`crate::ScanQuery::selectivity`] |
//! | `S` | selectivity of index-sargable predicates | [`crate::ScanQuery::sargable_selectivity`] |
//! | `C` / `CR` | clustering factor | [`crate::IndexStatistics::clustering_factor`] |
//!
//! Derived quantities used throughout: `R = N/T` (records per page), `D =
//! N/I` (records per key), `FPF` = the Full-index-scan Page Fetch curve
//! `B ↦ F`, stored as [`crate::IndexStatistics::fpf`].
//!
//! Invariants the paper states in §2, enforced by tests across the
//! workspace:
//!
//! * a table scan fetches exactly `T` pages, independent of `B`;
//! * a clustered index scan satisfies `F ≡ A` independent of `B`;
//! * in general `A ≤ F ≤ N`, and `F(B)` is non-increasing in `B`,
//!   reaching its floor `A` once `B` covers the scan's reuse distances.
