//! The catalog entry EPFIS stores per index.

use crate::config::EpfisConfig;
use crate::est_io::{self, ScanQuery};
use epfis_segfit::PiecewiseLinear;

/// Everything Est-IO needs, as produced by LRU-Fit and persisted in the
/// system catalog (§4.1: "This coordinate information can be stored in a
/// system catalog entry associated with the index").
#[derive(Debug, Clone, PartialEq)]
pub struct IndexStatistics {
    /// Pages in the underlying table (`T`).
    pub table_pages: u64,
    /// Records in the table == index entries (`N`).
    pub records: u64,
    /// Distinct key values in the index (`I`).
    pub distinct_keys: u64,
    /// Distinct data pages a full scan accesses (the paper's `A`); the hard
    /// floor of any full-scan fetch count.
    pub distinct_pages: u64,
    /// Clustering factor `C = (N − F_min)/(N − T) ∈ [0, 1]`.
    pub clustering_factor: f64,
    /// Smallest modeled buffer size.
    pub b_min: u64,
    /// Largest modeled buffer size.
    pub b_max: u64,
    /// The line-segment approximation of the FPF curve: maps buffer size to
    /// full-scan page fetches.
    pub fpf: PiecewiseLinear,
    /// The configuration LRU-Fit ran with (Est-IO reads its `phi_mode` and
    /// feature switches).
    pub config: EpfisConfig,
}

impl IndexStatistics {
    /// Full-scan page fetches `PF_B` at buffer size `b`, interpolated from
    /// the stored segments and clamped to the hard bounds `[A, N]` (§2: a
    /// full scan fetches at least its accessed pages and at most one page
    /// per record).
    pub fn full_scan_fetches(&self, b: u64) -> f64 {
        self.fpf
            .eval_clamped(b as f64, self.distinct_pages as f64, self.records as f64)
    }

    /// Estimated page fetches for `query` (Subprogram Est-IO, §4.2) using
    /// the stored configuration.
    pub fn estimate(&self, query: &ScanQuery) -> f64 {
        est_io::estimate(self, query, &self.config)
    }

    /// Estimated page fetches with an explicit (possibly different)
    /// configuration — used by the ablation benches.
    pub fn estimate_with(&self, query: &ScanQuery, config: &EpfisConfig) -> f64 {
        est_io::estimate(self, query, config)
    }

    /// Estimated page fetches plus the full decision record (`EXPLAIN
    /// ESTIMATE`): FPF segment identity, clamp, correction, and sargable
    /// reduction. The traced value is bit-identical to
    /// [`IndexStatistics::estimate`].
    pub fn estimate_traced(&self, query: &ScanQuery) -> crate::explain::EstimateTrace {
        est_io::estimate_traced(self, query, &self.config)
    }

    /// Average records per page `R = N / T`.
    pub fn records_per_page(&self) -> f64 {
        self.records as f64 / self.table_pages as f64
    }

    /// Number of `(B, F)` pairs the catalog stores for this index.
    pub fn stored_points(&self) -> usize {
        self.fpf.knots().len()
    }

    /// The smallest modeled buffer size whose predicted *full-scan* fetches
    /// are at most `target`, or `None` if even `B_max` predicts more.
    ///
    /// A DBA sizing aid: "how much buffer does this index need before a
    /// full scan costs at most 1.5 T?" The FPF model is non-increasing in
    /// `B`, so binary search over the modeled range is exact (to one page).
    pub fn buffer_for_full_scan_budget(&self, target: f64) -> Option<u64> {
        if self.full_scan_fetches(self.b_max) > target {
            return None;
        }
        let (mut lo, mut hi) = (self.b_min, self.b_max);
        if self.full_scan_fetches(lo) <= target {
            return Some(lo);
        }
        // Invariant: F(lo) > target >= F(hi).
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if self.full_scan_fetches(mid) <= target {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::EpfisConfig;
    use crate::lru_fit::LruFit;
    use epfis_lrusim::KeyedTrace;

    fn stats() -> super::IndexStatistics {
        let pages: Vec<u32> = (0..4000u32)
            .map(|i| i.wrapping_mul(2654435761) % 200)
            .collect();
        LruFit::new(EpfisConfig::default()).collect(&KeyedTrace::all_distinct(pages, 200))
    }

    #[test]
    fn buffer_budget_is_minimal_and_sufficient() {
        let s = stats();
        let target = 1.5 * s.table_pages as f64;
        let b = s.buffer_for_full_scan_budget(target).unwrap();
        assert!(s.full_scan_fetches(b) <= target);
        if b > s.b_min {
            assert!(s.full_scan_fetches(b - 1) > target, "not minimal: B={b}");
        }
    }

    #[test]
    fn unreachable_budget_returns_none() {
        let s = stats();
        // Fewer fetches than T is impossible for a full scan.
        assert_eq!(
            s.buffer_for_full_scan_budget(0.5 * s.table_pages as f64),
            None
        );
    }

    #[test]
    fn trivial_budget_returns_b_min() {
        let s = stats();
        assert_eq!(
            s.buffer_for_full_scan_budget(s.records as f64 * 2.0),
            Some(s.b_min)
        );
    }
}
