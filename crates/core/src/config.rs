//! EPFIS tunables.
//!
//! Defaults match the paper: `B_sml = 12`, six line segments, the arithmetic
//! buffer-size grid, `φ = max(1, B/T)`, correction and sargable model
//! enabled. Every knob exists so the ablation benches can quantify the
//! paper's design choices.

/// How LRU-Fit chooses the buffer sizes `B_1 .. B_k` to sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridStrategy {
    /// The paper's heuristic: `B_{i+1} = B_i + 2·√(B_max − B_min)`.
    Arithmetic,
    /// Goetz Graefe's suggestion (footnote 2):
    /// `B_i = B_min · (B_max/B_min)^{i/k}` with `k` points.
    Geometric {
        /// Number of grid points (≥ 2).
        points: usize,
    },
}

/// Reading of the `φ` quantity in the small-σ correction (§4.2).
///
/// The paper prints `φ = max(1, B/T)`; under that reading `φ ≥ 1` always, so
/// the indicator `ν = [φ ≥ 3σ]` fires for every `σ ≤ 1/3` regardless of the
/// buffer. The surrounding prose ("if σ is small and σ ≪ B/T") suggests the
/// intent may have been `min(1, B/T)`, under which a tiny buffer suppresses
/// the correction. The printed form is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PhiMode {
    /// `φ = max(1, B/T)` — exactly as printed.
    #[default]
    PaperMax,
    /// `φ = min(1, B/T)` — the prose-consistent alternative.
    ProseMin,
}

/// Configuration of LRU-Fit and Est-IO.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpfisConfig {
    /// Smallest buffer size worth modeling (`B_sml`; paper: 12).
    pub b_sml: u64,
    /// Maximum number of line segments for the FPF approximation (paper: 6).
    pub segments: usize,
    /// Buffer-size sampling grid.
    pub grid: GridStrategy,
    /// `φ` reading in the small-σ correction.
    pub phi_mode: PhiMode,
    /// Whether the small-σ heuristic correction is applied (§4.2).
    pub enable_correction: bool,
    /// Whether the index-sargable urn-model reduction is applied (§4.2).
    pub enable_sargable_model: bool,
    /// Optional DBA-specified modeling range `(B_min, B_max)` overriding the
    /// automatic choice (§4.1: "If desired, the range of B can be specified
    /// by the database administrator").
    pub modeling_range: Option<(u64, u64)>,
}

impl Default for EpfisConfig {
    fn default() -> Self {
        EpfisConfig {
            b_sml: 12,
            segments: 6,
            grid: GridStrategy::Arithmetic,
            phi_mode: PhiMode::PaperMax,
            enable_correction: true,
            enable_sargable_model: true,
            modeling_range: None,
        }
    }
}

impl EpfisConfig {
    /// Panics if the configuration is out of domain.
    pub fn validate(&self) {
        assert!(self.b_sml >= 1, "B_sml must be at least 1");
        assert!(self.segments >= 1, "need at least one segment");
        if let GridStrategy::Geometric { points } = self.grid {
            assert!(points >= 2, "geometric grid needs at least 2 points");
        }
        if let Some((lo, hi)) = self.modeling_range {
            assert!(
                lo >= 1 && lo <= hi,
                "modeling range must satisfy 1 <= lo <= hi"
            );
        }
    }

    /// Builder: set the segment budget.
    pub fn with_segments(mut self, segments: usize) -> Self {
        self.segments = segments;
        self
    }

    /// Builder: set the grid strategy.
    pub fn with_grid(mut self, grid: GridStrategy) -> Self {
        self.grid = grid;
        self
    }

    /// Builder: set the DBA modeling range.
    pub fn with_modeling_range(mut self, lo: u64, hi: u64) -> Self {
        self.modeling_range = Some((lo, hi));
        self
    }

    /// Builder: disable the small-σ correction (ablation).
    pub fn without_correction(mut self) -> Self {
        self.enable_correction = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = EpfisConfig::default();
        assert_eq!(c.b_sml, 12);
        assert_eq!(c.segments, 6);
        assert_eq!(c.grid, GridStrategy::Arithmetic);
        assert_eq!(c.phi_mode, PhiMode::PaperMax);
        assert!(c.enable_correction);
        assert!(c.enable_sargable_model);
        assert!(c.modeling_range.is_none());
        c.validate();
    }

    #[test]
    fn builders_compose() {
        let c = EpfisConfig::default()
            .with_segments(3)
            .with_grid(GridStrategy::Geometric { points: 10 })
            .with_modeling_range(12, 500)
            .without_correction();
        assert_eq!(c.segments, 3);
        assert_eq!(c.grid, GridStrategy::Geometric { points: 10 });
        assert_eq!(c.modeling_range, Some((12, 500)));
        assert!(!c.enable_correction);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_segments_invalid() {
        EpfisConfig::default().with_segments(0).validate();
    }

    #[test]
    #[should_panic(expected = "1 <= lo <= hi")]
    fn inverted_range_invalid() {
        EpfisConfig::default()
            .with_modeling_range(100, 10)
            .validate();
    }

    #[test]
    #[should_panic(expected = "at least 2 points")]
    fn degenerate_geometric_grid_invalid() {
        EpfisConfig::default()
            .with_grid(GridStrategy::Geometric { points: 1 })
            .validate();
    }
}
