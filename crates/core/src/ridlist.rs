//! RID-list access paths (the paper's §6 future work).
//!
//! "Future work should consider the impact of some or all of the following:
//! indexes with sorted RIDs for a given key value, use of multiple indexes,
//! use of RID-list operations, index ANDing and ORing ..."
//!
//! This module implements the *estimation* side of those plans:
//!
//! * **RID-sorted scan** — collect the qualifying RIDs from the index, sort
//!   them by page, then fetch. Every qualifying page is fetched exactly
//!   once, regardless of the buffer size, so the cost is the expected number
//!   of distinct pages holding `k` of the `N` records — Yao's function.
//!   This removes the entire LRU-modeling problem at the price of
//!   materializing and sorting the RID list and losing key order.
//! * **Index ANDing / ORing** — intersect/unite the RID lists of several
//!   predicates, then fetch the combined (sorted) list. Selectivities
//!   compose under the optimizer's independence assumption, and the fetch
//!   cost is again Yao on the combined count.
//!
//! The execution side (actually sorting RIDs and fetching through the real
//! buffer pool) lives in the umbrella crate's `pipeline` module and is
//! validated against these estimates by integration tests.

use epfis_estimators::occupancy::yao;

/// Expected page fetches of a RID-sorted fetch of `qualifying` records from
/// a table of `table_pages` pages and `records` records.
///
/// Buffer-size independent (every page is visited once, in physical order).
///
/// ```
/// use epfis::ridlist::sorted_rid_fetches;
///
/// // 40k records on 1000 pages; fetching 4k random records after a RID
/// // sort touches ~982 pages — and never more than T, at any buffer size.
/// let f = sorted_rid_fetches(1000, 40_000, 4_000);
/// assert!(f > 950.0 && f <= 1000.0);
/// ```
pub fn sorted_rid_fetches(table_pages: u64, records: u64, qualifying: u64) -> f64 {
    yao(records, table_pages, qualifying.min(records))
}

/// Number of qualifying records after ANDing predicates with the given
/// selectivities (independence assumption).
pub fn and_qualifying(records: u64, selectivities: &[f64]) -> f64 {
    records as f64 * selectivities.iter().product::<f64>()
}

/// Number of qualifying records after ORing predicates with the given
/// selectivities (inclusion–exclusion under independence).
pub fn or_qualifying(records: u64, selectivities: &[f64]) -> f64 {
    let miss: f64 = selectivities.iter().map(|s| 1.0 - s).product();
    records as f64 * (1.0 - miss)
}

/// Cost estimate of a RID-sorted plan over an AND of predicates: Yao on the
/// intersected count, rounded into the continuous domain.
pub fn and_plan_fetches(table_pages: u64, records: u64, selectivities: &[f64]) -> f64 {
    let k = and_qualifying(records, selectivities).round() as u64;
    sorted_rid_fetches(table_pages, records, k)
}

/// Cost estimate of a RID-sorted plan over an OR of predicates.
pub fn or_plan_fetches(table_pages: u64, records: u64, selectivities: &[f64]) -> f64 {
    let k = or_qualifying(records, selectivities).round() as u64;
    sorted_rid_fetches(table_pages, records, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_scan_cost_is_buffer_free_and_bounded() {
        let f = sorted_rid_fetches(1000, 40_000, 4_000);
        assert!(f > 0.0);
        assert!(f <= 1000.0);
        assert!(f <= 4000.0);
        // All records touch all pages.
        assert!((sorted_rid_fetches(1000, 40_000, 40_000) - 1000.0).abs() < 1e-9);
        // Nothing qualifying, nothing fetched.
        assert_eq!(sorted_rid_fetches(1000, 40_000, 0), 0.0);
    }

    #[test]
    fn oversized_qualifying_count_is_clamped() {
        assert!((sorted_rid_fetches(10, 100, 1_000_000) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn and_composes_multiplicatively() {
        assert!((and_qualifying(1000, &[0.5, 0.2]) - 100.0).abs() < 1e-12);
        assert!((and_qualifying(1000, &[]) - 1000.0).abs() < 1e-12);
    }

    #[test]
    fn or_composes_by_inclusion_exclusion() {
        // P(A or B) = 0.5 + 0.2 - 0.1 = 0.6.
        assert!((or_qualifying(1000, &[0.5, 0.2]) - 600.0).abs() < 1e-9);
        assert_eq!(or_qualifying(1000, &[]), 0.0);
        assert!((or_qualifying(1000, &[1.0, 0.01]) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn anding_reduces_fetches_oring_increases() {
        let t = 2_000u64;
        let n = 80_000u64;
        let single = sorted_rid_fetches(t, n, (0.3f64 * n as f64) as u64);
        let anded = and_plan_fetches(t, n, &[0.3, 0.3]);
        let ored = or_plan_fetches(t, n, &[0.3, 0.3]);
        assert!(anded < single);
        assert!(ored > single);
    }

    #[test]
    fn sorted_scan_beats_unclustered_thrashing_estimate() {
        // For an unclustered index with a small buffer, sigma*N approaches
        // the per-record cost; the RID-sorted plan caps at distinct pages.
        let t = 1_000u64;
        let n = 40_000u64;
        let sigma = 0.5;
        let k = (sigma * n as f64) as u64;
        let sorted = sorted_rid_fetches(t, n, k);
        assert!(sorted <= t as f64);
        assert!((k as f64) > 10.0 * sorted);
    }
}
