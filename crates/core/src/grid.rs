//! Buffer-size sampling grids (§4.1, "Determining Modeling Range").
//!
//! The automatic range is `B_min = max(0.01·T, B_sml)` to `B_max = T`. The
//! paper's grid walks arithmetically with step `2·√(B_max − B_min)` — "an
//! increased number of buffer size values ... for larger ranges, but the
//! increase is slower than the increase in the range size" (the point count
//! grows as √range). Footnote 2 records Goetz Graefe's geometric
//! alternative, which spends points where the curve bends (small `B`).

use crate::config::GridStrategy;

/// The buffer sizes LRU-Fit samples, always including both endpoints,
/// strictly increasing.
pub fn grid_points(b_min: u64, b_max: u64, strategy: GridStrategy) -> Vec<u64> {
    assert!(b_min >= 1 && b_min <= b_max, "need 1 <= b_min <= b_max");
    if b_min == b_max {
        return vec![b_min];
    }
    let mut points = match strategy {
        GridStrategy::Arithmetic => {
            let step = (2.0 * ((b_max - b_min) as f64).sqrt()).max(1.0) as u64;
            let mut v = Vec::new();
            let mut b = b_min;
            while b < b_max {
                v.push(b);
                b = b.saturating_add(step);
            }
            v.push(b_max);
            v
        }
        GridStrategy::Geometric { points } => {
            let k = points.max(2);
            let lo = b_min as f64;
            let ratio = b_max as f64 / lo;
            (0..=k)
                .map(|i| (lo * ratio.powf(i as f64 / k as f64)).round() as u64)
                .collect()
        }
    };
    points.dedup();
    debug_assert!(points.windows(2).all(|w| w[0] < w[1]));
    debug_assert_eq!(*points.first().unwrap(), b_min);
    debug_assert_eq!(*points.last().unwrap(), b_max);
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_grid_matches_paper_step() {
        // T = 25000-ish: B_min=250, B_max=25000, step = 2*sqrt(24750) ≈ 314.
        let g = grid_points(250, 25_000, GridStrategy::Arithmetic);
        assert_eq!(g[0], 250);
        assert_eq!(*g.last().unwrap(), 25_000);
        let step = g[1] - g[0];
        assert_eq!(step, (2.0 * (24_750f64).sqrt()) as u64);
        // Interior spacing is constant.
        for w in g.windows(2).take(g.len() - 2) {
            assert_eq!(w[1] - w[0], step);
        }
    }

    #[test]
    fn point_count_grows_slower_than_range() {
        let small = grid_points(12, 1_000, GridStrategy::Arithmetic).len();
        let large = grid_points(12, 100_000, GridStrategy::Arithmetic).len();
        assert!(large > small);
        // 100x the range, ~10x the points (sqrt growth).
        assert!(large < small * 20);
    }

    #[test]
    fn geometric_grid_has_requested_points_and_endpoints() {
        let g = grid_points(12, 12_000, GridStrategy::Geometric { points: 16 });
        assert_eq!(g[0], 12);
        assert_eq!(*g.last().unwrap(), 12_000);
        assert!(g.len() <= 17);
        // Ratios roughly constant (geometric).
        let r1 = g[1] as f64 / g[0] as f64;
        let r2 = g[g.len() - 1] as f64 / g[g.len() - 2] as f64;
        assert!((r1 / r2 - 1.0).abs() < 0.3, "r1={r1} r2={r2}");
    }

    #[test]
    fn geometric_concentrates_points_at_small_buffers() {
        let g = grid_points(12, 12_000, GridStrategy::Geometric { points: 16 });
        let below_mid = g.iter().filter(|&&b| b < 6_000).count();
        assert!(below_mid * 2 > g.len(), "geometric grid should front-load");
    }

    #[test]
    fn degenerate_single_point_range() {
        assert_eq!(grid_points(5, 5, GridStrategy::Arithmetic), vec![5]);
        assert_eq!(
            grid_points(5, 5, GridStrategy::Geometric { points: 8 }),
            vec![5]
        );
    }

    #[test]
    fn tiny_ranges_are_still_sorted_and_deduped() {
        for strategy in [
            GridStrategy::Arithmetic,
            GridStrategy::Geometric { points: 30 },
        ] {
            let g = grid_points(3, 7, strategy);
            assert!(g.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(g[0], 3);
            assert_eq!(*g.last().unwrap(), 7);
        }
    }

    #[test]
    #[should_panic(expected = "b_min <= b_max")]
    fn inverted_range_panics() {
        grid_points(10, 5, GridStrategy::Arithmetic);
    }
}
