//! # EPFIS — Estimating Page Fetches for Index Scans with finite LRU buffers
//!
//! A faithful implementation of Algorithm EPFIS from Swami & Schiefer,
//! *"Estimating Page Fetches for Index Scans with Finite LRU Buffers"*
//! (The VLDB Journal 4(4), 1995; submitted 1994).
//!
//! EPFIS answers the question a cost-based query optimizer asks for every
//! candidate index access path: *given `B` buffer pages and a predicate
//! selecting a fraction `σ` of the records, how many data pages will the
//! scan fetch from disk?* Unlike its probabilistic predecessors, EPFIS is an
//! **empirical** model: it measures the index's actual Full-index-scan Page
//! Fetch (FPF) curve once, at statistics-collection time, and answers
//! optimizer queries from a compact piecewise-linear summary of it.
//!
//! The two components mirror the paper:
//!
//! * [`lru_fit::LruFit`] (Subprogram **LRU-Fit**, §4.1) — run during
//!   statistics collection. One pass over the index's page-reference trace
//!   (using the LRU stack property) produces page-fetch counts at a grid of
//!   buffer sizes, the clustering factor `C`, and the line-segment
//!   approximation of the FPF curve; everything is packed into an
//!   [`IndexStatistics`] catalog entry.
//! * [`est_io::estimate`] (Subprogram **Est-IO**, §4.2) — called by the
//!   optimizer at query-compilation time. Interpolates `PF_B` from the
//!   stored segments, scales by `σ`, applies the small-`σ` heuristic
//!   correction, and applies the urn-model reduction for index-sargable
//!   predicates.
//!
//! Supporting modules: [`config`] (tunables, including Goetz Graefe's
//! geometric grid from the paper's footnote 2 and the ablation switches),
//! [`catalog`] (a named collection of [`IndexStatistics`] with a versioned
//! text codec — what a system catalog would persist), [`optimizer`] (a
//! miniature cost-based access-path selector that consumes the estimates,
//! §2's plan-choice setting), and [`notation`] (the paper's Table 1 mapped
//! onto this crate's types).
//!
//! ## Quick start
//!
//! ```
//! use epfis::{EpfisConfig, LruFit, ScanQuery};
//! use epfis_lrusim::KeyedTrace;
//!
//! // The statistics scan of an index yields data-page references in key
//! // order; here, 3 keys over a 4-page table.
//! let trace = KeyedTrace::from_run_lengths(vec![0, 1, 0, 2, 3, 1], &[2, 2, 2], 4);
//!
//! // Statistics-collection time: build the catalog entry.
//! let stats = LruFit::new(EpfisConfig::default()).collect(&trace);
//!
//! // Query-compilation time: estimate fetches for a 50%-selectivity scan
//! // with 2 buffer pages.
//! let est = stats.estimate(&ScanQuery::range(0.5, 2));
//! assert!(est > 0.0 && est <= 6.0);
//! ```

pub mod catalog;
pub mod config;
pub mod est_io;
pub mod explain;
pub mod grid;
pub mod lru_fit;
pub mod notation;
pub mod optimizer;
pub mod ridlist;
pub mod selectivity;
pub mod stats;

pub use catalog::Catalog;
pub use config::{EpfisConfig, GridStrategy, PhiMode};
pub use est_io::{EpfisEstimator, ScanQuery};
pub use explain::EstimateTrace;
pub use lru_fit::LruFit;
pub use selectivity::EquiDepthHistogram;
pub use stats::IndexStatistics;
