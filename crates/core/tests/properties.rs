//! Property tests for the EPFIS core: Est-IO invariants and catalog
//! round-trips over arbitrary traces and configurations.

use epfis::{Catalog, EpfisConfig, GridStrategy, LruFit, PhiMode, ScanQuery};
use epfis_lrusim::KeyedTrace;
use proptest::prelude::*;

/// An arbitrary keyed trace: T pages, keys with 1..=4 entries each,
/// pseudo-random placement driven by proptest.
fn trace_strategy() -> impl Strategy<Value = KeyedTrace> {
    (2u32..150, 1usize..400, any::<u64>()).prop_map(|(t, keys, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut pages = Vec::new();
        let mut lens = Vec::with_capacity(keys);
        for _ in 0..keys {
            let len = 1 + next() % 4;
            lens.push(len);
            for _ in 0..len {
                pages.push(next() % t);
            }
        }
        KeyedTrace::from_run_lengths(pages, &lens, t)
    })
}

fn config_strategy() -> impl Strategy<Value = EpfisConfig> {
    (
        1u64..40,
        1usize..12,
        prop_oneof![
            Just(GridStrategy::Arithmetic),
            (2usize..30).prop_map(|points| GridStrategy::Geometric { points }),
        ],
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(b_sml, segments, grid, phi_min, corr, sarg)| EpfisConfig {
            b_sml,
            segments,
            grid,
            phi_mode: if phi_min {
                PhiMode::ProseMin
            } else {
                PhiMode::PaperMax
            },
            enable_correction: corr,
            enable_sargable_model: sarg,
            modeling_range: None,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lru_fit_never_panics_and_stats_are_sane(trace in trace_strategy(), cfg in config_strategy()) {
        let stats = LruFit::new(cfg).collect(&trace);
        prop_assert_eq!(stats.records, trace.num_entries());
        prop_assert!((0.0..=1.0).contains(&stats.clustering_factor));
        prop_assert!(stats.b_min >= 1 && stats.b_min <= stats.b_max);
        prop_assert!(stats.fpf.segments() <= cfg.segments);
        // The stored curve endpoints reproduce the exact simulation.
        let exact_min = epfis_lrusim::simulate_lru(trace.pages(), stats.b_min as usize) as f64;
        prop_assert!((stats.full_scan_fetches(stats.b_min) - exact_min).abs() < 1e-6);
    }

    #[test]
    fn estimates_are_finite_nonnegative_and_bounded(
        trace in trace_strategy(),
        cfg in config_strategy(),
        sigma in 0.0f64..=1.0,
        s in 0.0f64..=1.0,
        b in 1u64..500,
    ) {
        let stats = LruFit::new(cfg).collect(&trace);
        let est = stats.estimate(&ScanQuery::range(sigma, b).with_sargable(s));
        prop_assert!(est.is_finite());
        prop_assert!(est >= 0.0);
        // sigma*PF_B <= N; correction adds at most T.
        prop_assert!(est <= (trace.num_entries() + trace.table_pages() as u64) as f64 + 1e-6);
    }

    #[test]
    fn full_scan_estimates_are_monotone_in_buffer(trace in trace_strategy()) {
        let stats = LruFit::new(EpfisConfig::default()).collect(&trace);
        let mut prev = f64::INFINITY;
        for b in (1..=trace.table_pages() as u64 + 4).step_by(3) {
            let est = stats.estimate(&ScanQuery::full(b));
            prop_assert!(est <= prev + 1e-9, "B={b}: {est} > {prev}");
            prev = est;
        }
    }

    #[test]
    fn sargable_model_only_ever_reduces(trace in trace_strategy(), sigma in 0.01f64..=1.0, s in 0.0f64..1.0) {
        let stats = LruFit::new(EpfisConfig::default()).collect(&trace);
        let b = (trace.table_pages() as u64 / 2).max(1);
        let plain = stats.estimate(&ScanQuery::range(sigma, b));
        let filtered = stats.estimate(&ScanQuery::range(sigma, b).with_sargable(s));
        prop_assert!(filtered <= plain + 1e-9);
    }

    #[test]
    fn catalog_round_trip_is_exact_for_arbitrary_entries(
        trace in trace_strategy(),
        cfg in config_strategy(),
        name_suffix in 0u32..1000,
    ) {
        let stats = LruFit::new(cfg).collect(&trace);
        let mut catalog = Catalog::new();
        catalog.insert(format!("ix_{name_suffix}"), stats).unwrap();
        let back = Catalog::from_text(&catalog.to_text()).unwrap();
        prop_assert_eq!(back, catalog);
    }

    #[test]
    fn catalog_round_trips_extreme_fpf_values(
        knot_count in 2usize..8,
        seed in any::<u64>(),
        extreme_x in any::<bool>(),
    ) {
        // Hand-built statistics whose curve values span the nastiest f64s
        // the text codec must carry: subnormals, the largest finite value,
        // and long mantissas. Only x-monotonicity is required by
        // PiecewiseLinear, so y draws freely from the palette.
        const PALETTE: &[f64] = &[
            5e-324,                   // smallest subnormal
            2.2250738585072014e-308,  // smallest normal
            1e-300,
            0.0,
            1.0,
            0.123_456_789_012_345_68,
            1e308,
            f64::MAX,
            9.87654321e77,
        ];
        let ys: Vec<f64> = (0..knot_count)
            .map(|i| PALETTE[(seed.wrapping_add(i as u64 * 7919) % PALETTE.len() as u64) as usize])
            .collect();
        let xs: Vec<f64> = if extreme_x {
            // Strictly increasing through the extremes of the positive axis.
            let full = [5e-324, 1e-300, 1e-10, 1.0, 1e10, 1e100, 1e308];
            full[..knot_count.min(full.len())].to_vec()
        } else {
            (0..knot_count).map(|i| i as f64 + 1.0).collect()
        };
        let knots: Vec<(f64, f64)> = xs.iter().zip(&ys).map(|(&x, &y)| (x, y)).collect();
        let stats = epfis::IndexStatistics {
            table_pages: u64::MAX,
            records: u64::MAX - 1,
            distinct_keys: 1,
            distinct_pages: u64::MAX / 2,
            clustering_factor: 5e-324,
            b_min: 1,
            b_max: u64::MAX,
            fpf: epfis_segfit::PiecewiseLinear::new(knots),
            config: EpfisConfig::default(),
        };
        let mut catalog = Catalog::new();
        catalog.insert("extreme", stats).unwrap();
        let back = Catalog::from_text(&catalog.to_text()).unwrap();
        prop_assert_eq!(back, catalog);
    }

    #[test]
    fn disabling_features_never_increases_the_estimate(
        trace in trace_strategy(),
        sigma in 0.0f64..=1.0,
        b in 1u64..300,
    ) {
        // The correction is additive and the sargable factor multiplicative
        // in [0,1]: turning the correction off can only lower estimates.
        let with = LruFit::new(EpfisConfig::default()).collect(&trace);
        let without = LruFit::new(EpfisConfig::default().without_correction()).collect(&trace);
        let q = ScanQuery::range(sigma, b);
        prop_assert!(without.estimate(&q) <= with.estimate(&q) + 1e-9);
    }
}
