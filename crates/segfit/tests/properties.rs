//! Property tests for the piecewise-linear fitter.

use epfis_segfit::{fit_max_segments, fit_tolerance, PiecewiseLinear};
use proptest::prelude::*;

fn points_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    // Strictly increasing x; bounded y to keep arithmetic tame.
    prop::collection::vec((0.01f64..10.0, -1000.0f64..1000.0), 1..60).prop_map(|steps| {
        let mut x = 0.0;
        steps
            .into_iter()
            .map(|(dx, y)| {
                x += dx;
                (x, y)
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn fit_stays_within_budget(pts in points_strategy(), k in 1usize..10) {
        let f = fit_max_segments(&pts, k);
        prop_assert!(f.segments() <= k);
    }

    #[test]
    fn fit_passes_through_endpoints(pts in points_strategy(), k in 1usize..10) {
        let f = fit_max_segments(&pts, k);
        let first = pts[0];
        let last = *pts.last().unwrap();
        prop_assert!((f.eval(first.0) - first.1).abs() < 1e-9);
        prop_assert!((f.eval(last.0) - last.1).abs() < 1e-9);
    }

    #[test]
    fn tolerance_fit_honors_tolerance(pts in points_strategy(), tol in 0.0f64..500.0) {
        let f = fit_tolerance(&pts, tol);
        for &(x, y) in &pts {
            prop_assert!((f.eval(x) - y).abs() <= tol + 1e-6);
        }
    }

    #[test]
    fn knots_are_a_subset_of_samples(pts in points_strategy(), k in 1usize..10) {
        let f = fit_max_segments(&pts, k);
        for knot in f.knots() {
            prop_assert!(pts.iter().any(|p| p == knot));
        }
    }

    #[test]
    fn eval_is_monotone_for_monotone_knots(ys in prop::collection::vec(0.0f64..100.0, 2..20)) {
        // Build a non-increasing knot list (like an FPF curve) and check
        // interpolation never rises.
        let mut acc = 1_000_000.0f64;
        let knots: Vec<(f64, f64)> = ys
            .iter()
            .enumerate()
            .map(|(i, &dy)| {
                acc -= dy;
                (i as f64 * 3.0 + 1.0, acc)
            })
            .collect();
        let f = PiecewiseLinear::new(knots.clone());
        let mut prev = f64::INFINITY;
        let lo = f.x_min();
        let hi = f.x_max();
        let steps = 50;
        for s in 0..=steps {
            let x = lo + (hi - lo) * s as f64 / steps as f64;
            let y = f.eval(x);
            prop_assert!(y <= prev + 1e-9);
            prev = y;
        }
    }
}
