//! The piecewise-linear function type.

/// A piecewise-linear function defined by sorted knots.
///
/// * Inside `[x_first, x_last]`: linear interpolation between bracketing
///   knots.
/// * Outside: linear extrapolation of the first/last segment (a single-knot
///   function is constant).
///
/// This is exactly the catalog object EPFIS stores per index: "the
/// coordinates of the end-points of the line segments".
///
/// ```
/// use epfis_segfit::PiecewiseLinear;
///
/// let f = PiecewiseLinear::new(vec![(0.0, 10.0), (10.0, 0.0)]);
/// assert_eq!(f.eval(5.0), 5.0);    // interpolation
/// assert_eq!(f.eval(20.0), -10.0); // linear extrapolation past the end
/// assert_eq!(f.eval_clamped(20.0, 0.0, 10.0), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    knots: Vec<(f64, f64)>,
}

impl PiecewiseLinear {
    /// Builds a function from knots sorted by strictly increasing `x`.
    ///
    /// # Panics
    /// Panics if `knots` is empty, contains non-finite coordinates, or is
    /// not strictly increasing in `x`.
    pub fn new(knots: Vec<(f64, f64)>) -> Self {
        assert!(!knots.is_empty(), "need at least one knot");
        for w in knots.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "knot x-coordinates must be strictly increasing"
            );
        }
        for &(x, y) in &knots {
            assert!(x.is_finite() && y.is_finite(), "knots must be finite");
        }
        PiecewiseLinear { knots }
    }

    /// The knots, sorted by `x`.
    pub fn knots(&self) -> &[(f64, f64)] {
        &self.knots
    }

    /// Number of line segments (`knots - 1`, or 0 for a constant).
    pub fn segments(&self) -> usize {
        self.knots.len().saturating_sub(1)
    }

    /// Smallest knot `x`.
    pub fn x_min(&self) -> f64 {
        self.knots[0].0
    }

    /// Largest knot `x`.
    pub fn x_max(&self) -> f64 {
        self.knots[self.knots.len() - 1].0
    }

    /// Evaluates the function at `x` (interpolating or extrapolating).
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.knots.len();
        if n == 1 {
            return self.knots[0].1;
        }
        // Pick the segment: clamp to the end segments outside the range.
        let seg = match self
            .knots
            .binary_search_by(|probe| probe.0.partial_cmp(&x).expect("finite x"))
        {
            Ok(i) => return self.knots[i].1,
            Err(0) => 0,
            Err(i) if i >= n => n - 2,
            Err(i) => i - 1,
        };
        let (x0, y0) = self.knots[seg];
        let (x1, y1) = self.knots[seg + 1];
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Evaluates with the result clamped into `[lo, hi]` — used by Est-IO to
    /// keep extrapolated full-scan fetch counts within the hard bounds
    /// `A <= PF_B <= N`.
    pub fn eval_clamped(&self, x: f64, lo: f64, hi: f64) -> f64 {
        self.eval(x).clamp(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f() -> PiecewiseLinear {
        PiecewiseLinear::new(vec![(0.0, 0.0), (10.0, 100.0), (20.0, 100.0)])
    }

    #[test]
    fn evaluates_at_knots_exactly() {
        let f = f();
        assert_eq!(f.eval(0.0), 0.0);
        assert_eq!(f.eval(10.0), 100.0);
        assert_eq!(f.eval(20.0), 100.0);
    }

    #[test]
    fn interpolates_between_knots() {
        let f = f();
        assert!((f.eval(5.0) - 50.0).abs() < 1e-12);
        assert!((f.eval(15.0) - 100.0).abs() < 1e-12);
        assert!((f.eval(2.5) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn extrapolates_end_segments() {
        let f = f();
        assert!((f.eval(-5.0) - -50.0).abs() < 1e-12);
        assert!((f.eval(30.0) - 100.0).abs() < 1e-12); // flat last segment
    }

    #[test]
    fn clamped_eval_respects_bounds() {
        let f = f();
        assert_eq!(f.eval_clamped(-5.0, 0.0, 100.0), 0.0);
        assert_eq!(f.eval_clamped(5.0, 0.0, 100.0), 50.0);
        assert_eq!(f.eval_clamped(9.9, 0.0, 40.0), 40.0);
    }

    #[test]
    fn single_knot_is_constant() {
        let f = PiecewiseLinear::new(vec![(3.0, 7.0)]);
        assert_eq!(f.eval(-100.0), 7.0);
        assert_eq!(f.eval(3.0), 7.0);
        assert_eq!(f.eval(100.0), 7.0);
        assert_eq!(f.segments(), 0);
    }

    #[test]
    fn segment_count() {
        assert_eq!(f().segments(), 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_knots_panic() {
        PiecewiseLinear::new(vec![(1.0, 0.0), (1.0, 5.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one knot")]
    fn empty_knots_panic() {
        PiecewiseLinear::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_knot_panics() {
        PiecewiseLinear::new(vec![(0.0, f64::NAN)]);
    }
}
