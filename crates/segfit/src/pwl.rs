//! The piecewise-linear function type.

/// A piecewise-linear function defined by sorted knots.
///
/// * Inside `[x_first, x_last]`: linear interpolation between bracketing
///   knots.
/// * Outside: linear extrapolation of the first/last segment (a single-knot
///   function is constant).
///
/// This is exactly the catalog object EPFIS stores per index: "the
/// coordinates of the end-points of the line segments".
///
/// ```
/// use epfis_segfit::PiecewiseLinear;
///
/// let f = PiecewiseLinear::new(vec![(0.0, 10.0), (10.0, 0.0)]);
/// assert_eq!(f.eval(5.0), 5.0);    // interpolation
/// assert_eq!(f.eval(20.0), -10.0); // linear extrapolation past the end
/// assert_eq!(f.eval_clamped(20.0, 0.0, 10.0), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    knots: Vec<(f64, f64)>,
}

/// How a [`PiecewiseLinear::eval_traced`] value was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// `x` fell strictly between the segment's knots.
    Interpolated,
    /// `x` hit a knot exactly; the knot's `y` was returned verbatim.
    AtKnot,
    /// `x` was below the first knot; the first segment was extended.
    ExtrapolatedBelow,
    /// `x` was above the last knot; the last segment was extended.
    ExtrapolatedAbove,
    /// The function has a single knot and is constant everywhere.
    Constant,
}

impl SegmentKind {
    /// Short lower-case name, stable for wire formats.
    pub fn name(self) -> &'static str {
        match self {
            SegmentKind::Interpolated => "interpolated",
            SegmentKind::AtKnot => "at-knot",
            SegmentKind::ExtrapolatedBelow => "extrapolated-below",
            SegmentKind::ExtrapolatedAbove => "extrapolated-above",
            SegmentKind::Constant => "constant",
        }
    }
}

/// The result of [`PiecewiseLinear::eval_traced`]: the value plus the
/// identity of the segment that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalTrace {
    /// Index of the segment used (0-based; 0 for a constant function).
    pub segment: usize,
    /// How the value relates to that segment.
    pub kind: SegmentKind,
    /// Left endpoint `x`.
    pub x0: f64,
    /// Left endpoint `y`.
    pub y0: f64,
    /// Right endpoint `x`.
    pub x1: f64,
    /// Right endpoint `y`.
    pub y1: f64,
    /// The evaluated value, bit-identical to [`PiecewiseLinear::eval`].
    pub value: f64,
}

impl PiecewiseLinear {
    /// Builds a function from knots sorted by strictly increasing `x`.
    ///
    /// # Panics
    /// Panics if `knots` is empty, contains non-finite coordinates, or is
    /// not strictly increasing in `x`.
    pub fn new(knots: Vec<(f64, f64)>) -> Self {
        assert!(!knots.is_empty(), "need at least one knot");
        for w in knots.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "knot x-coordinates must be strictly increasing"
            );
        }
        for &(x, y) in &knots {
            assert!(x.is_finite() && y.is_finite(), "knots must be finite");
        }
        PiecewiseLinear { knots }
    }

    /// The knots, sorted by `x`.
    pub fn knots(&self) -> &[(f64, f64)] {
        &self.knots
    }

    /// Number of line segments (`knots - 1`, or 0 for a constant).
    pub fn segments(&self) -> usize {
        self.knots.len().saturating_sub(1)
    }

    /// Smallest knot `x`.
    pub fn x_min(&self) -> f64 {
        self.knots[0].0
    }

    /// Largest knot `x`.
    pub fn x_max(&self) -> f64 {
        self.knots[self.knots.len() - 1].0
    }

    /// Evaluates the function at `x` (interpolating or extrapolating).
    pub fn eval(&self, x: f64) -> f64 {
        self.eval_traced(x).value
    }

    /// Evaluates at `x` and reports *which* piece of the function produced
    /// the value: the segment index, its endpoint knots, and whether the
    /// point was interpolated, extrapolated past an end segment, hit a
    /// knot exactly, or came from a single-knot constant.
    ///
    /// [`PiecewiseLinear::eval`] delegates here, so the traced value is
    /// bit-identical to the untraced one by construction.
    pub fn eval_traced(&self, x: f64) -> EvalTrace {
        let n = self.knots.len();
        if n == 1 {
            let (kx, ky) = self.knots[0];
            return EvalTrace {
                segment: 0,
                kind: SegmentKind::Constant,
                x0: kx,
                y0: ky,
                x1: kx,
                y1: ky,
                value: ky,
            };
        }
        // Pick the segment: clamp to the end segments outside the range.
        let (seg, kind) = match self
            .knots
            .binary_search_by(|probe| probe.0.partial_cmp(&x).expect("finite x"))
        {
            Ok(i) => {
                // Exact knot hit: report the segment the knot starts (or,
                // for the last knot, ends) without re-deriving the value.
                let seg = i.min(n - 2);
                let (x0, y0) = self.knots[seg];
                let (x1, y1) = self.knots[seg + 1];
                return EvalTrace {
                    segment: seg,
                    kind: SegmentKind::AtKnot,
                    x0,
                    y0,
                    x1,
                    y1,
                    value: self.knots[i].1,
                };
            }
            Err(0) => (0, SegmentKind::ExtrapolatedBelow),
            Err(i) if i >= n => (n - 2, SegmentKind::ExtrapolatedAbove),
            Err(i) => (i - 1, SegmentKind::Interpolated),
        };
        let (x0, y0) = self.knots[seg];
        let (x1, y1) = self.knots[seg + 1];
        EvalTrace {
            segment: seg,
            kind,
            x0,
            y0,
            x1,
            y1,
            value: y0 + (y1 - y0) * (x - x0) / (x1 - x0),
        }
    }

    /// Evaluates with the result clamped into `[lo, hi]` — used by Est-IO to
    /// keep extrapolated full-scan fetch counts within the hard bounds
    /// `A <= PF_B <= N`.
    pub fn eval_clamped(&self, x: f64, lo: f64, hi: f64) -> f64 {
        self.eval(x).clamp(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f() -> PiecewiseLinear {
        PiecewiseLinear::new(vec![(0.0, 0.0), (10.0, 100.0), (20.0, 100.0)])
    }

    #[test]
    fn evaluates_at_knots_exactly() {
        let f = f();
        assert_eq!(f.eval(0.0), 0.0);
        assert_eq!(f.eval(10.0), 100.0);
        assert_eq!(f.eval(20.0), 100.0);
    }

    #[test]
    fn interpolates_between_knots() {
        let f = f();
        assert!((f.eval(5.0) - 50.0).abs() < 1e-12);
        assert!((f.eval(15.0) - 100.0).abs() < 1e-12);
        assert!((f.eval(2.5) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn extrapolates_end_segments() {
        let f = f();
        assert!((f.eval(-5.0) - -50.0).abs() < 1e-12);
        assert!((f.eval(30.0) - 100.0).abs() < 1e-12); // flat last segment
    }

    #[test]
    fn clamped_eval_respects_bounds() {
        let f = f();
        assert_eq!(f.eval_clamped(-5.0, 0.0, 100.0), 0.0);
        assert_eq!(f.eval_clamped(5.0, 0.0, 100.0), 50.0);
        assert_eq!(f.eval_clamped(9.9, 0.0, 40.0), 40.0);
    }

    #[test]
    fn single_knot_is_constant() {
        let f = PiecewiseLinear::new(vec![(3.0, 7.0)]);
        assert_eq!(f.eval(-100.0), 7.0);
        assert_eq!(f.eval(3.0), 7.0);
        assert_eq!(f.eval(100.0), 7.0);
        assert_eq!(f.segments(), 0);
    }

    #[test]
    fn segment_count() {
        assert_eq!(f().segments(), 2);
    }

    #[test]
    fn traced_eval_reports_segment_identity() {
        let f = f();
        let t = f.eval_traced(5.0);
        assert_eq!(t.kind, SegmentKind::Interpolated);
        assert_eq!(t.segment, 0);
        assert_eq!((t.x0, t.y0, t.x1, t.y1), (0.0, 0.0, 10.0, 100.0));
        let t = f.eval_traced(15.0);
        assert_eq!((t.kind, t.segment), (SegmentKind::Interpolated, 1));
        assert_eq!(f.eval_traced(10.0).kind, SegmentKind::AtKnot);
        assert_eq!(f.eval_traced(20.0).kind, SegmentKind::AtKnot);
        assert_eq!(f.eval_traced(20.0).segment, 1);
        assert_eq!(f.eval_traced(-1.0).kind, SegmentKind::ExtrapolatedBelow);
        assert_eq!(f.eval_traced(99.0).kind, SegmentKind::ExtrapolatedAbove);
        let c = PiecewiseLinear::new(vec![(3.0, 7.0)]);
        assert_eq!(c.eval_traced(0.0).kind, SegmentKind::Constant);
        assert_eq!(c.eval_traced(0.0).value, 7.0);
    }

    #[test]
    fn traced_value_is_bit_identical_to_eval() {
        let f = f();
        for i in -50..=100 {
            let x = i as f64 * 0.37;
            assert_eq!(f.eval(x).to_bits(), f.eval_traced(x).value.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_knots_panic() {
        PiecewiseLinear::new(vec![(1.0, 0.0), (1.0, 5.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one knot")]
    fn empty_knots_panic() {
        PiecewiseLinear::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_knot_panics() {
        PiecewiseLinear::new(vec![(0.0, f64::NAN)]);
    }
}
