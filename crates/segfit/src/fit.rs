//! Fitting piecewise-linear approximations to sampled curves.
//!
//! Both fitters interpolate *through* sample points (knots are a subset of
//! the samples), which matches the paper's catalog format: segment end-points
//! are `(B_i, F_i)` pairs actually observed by the LRU simulation.
//!
//! The core operation is greedy knot refinement: start with the two extreme
//! samples as knots; repeatedly find the sample with the largest vertical
//! deviation from the current approximation and promote it to a knot. For
//! monotone, convex-ish FPF curves this is within a small factor of the
//! optimal max-error fit and is the standard practical scheme (cf. the
//! Douglas–Peucker family and Natarajan's one-pass methods).

use crate::pwl::PiecewiseLinear;

/// Residual metrics of a fit against the points it was built from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitReport {
    /// Largest `|fit(x) - y|` over the sample points.
    pub max_abs_error: f64,
    /// Mean `|fit(x) - y|` over the sample points.
    pub mean_abs_error: f64,
    /// Largest `|fit(x) - y| / max(|y|, 1)` over the sample points.
    pub max_rel_error: f64,
    /// Number of segments in the fit.
    pub segments: usize,
}

/// Computes residuals of `f` against `points`.
pub fn report(f: &PiecewiseLinear, points: &[(f64, f64)]) -> FitReport {
    let mut max_abs = 0.0f64;
    let mut sum_abs = 0.0f64;
    let mut max_rel = 0.0f64;
    for &(x, y) in points {
        let e = (f.eval(x) - y).abs();
        max_abs = max_abs.max(e);
        sum_abs += e;
        max_rel = max_rel.max(e / y.abs().max(1.0));
    }
    FitReport {
        max_abs_error: max_abs,
        mean_abs_error: if points.is_empty() {
            0.0
        } else {
            sum_abs / points.len() as f64
        },
        max_rel_error: max_rel,
        segments: f.segments(),
    }
}

fn validate_points(points: &[(f64, f64)]) {
    assert!(!points.is_empty(), "need at least one sample point");
    for w in points.windows(2) {
        assert!(
            w[0].0 < w[1].0,
            "sample x-coordinates must be strictly increasing"
        );
    }
    for &(x, y) in points {
        assert!(x.is_finite() && y.is_finite(), "samples must be finite");
    }
}

/// Vertical deviation of each interior point from the chord through the
/// bracketing knots; returns the worst offender's index within
/// `points[lo..=hi]`, if its deviation exceeds 0.
fn worst_deviation(points: &[(f64, f64)], lo: usize, hi: usize) -> Option<(usize, f64)> {
    if hi - lo < 2 {
        return None;
    }
    let (x0, y0) = points[lo];
    let (x1, y1) = points[hi];
    let mut best: Option<(usize, f64)> = None;
    for (i, &(x, y)) in points.iter().enumerate().take(hi).skip(lo + 1) {
        let chord = y0 + (y1 - y0) * (x - x0) / (x1 - x0);
        let dev = (y - chord).abs();
        if dev > best.map_or(0.0, |(_, d)| d) {
            best = Some((i, dev));
        }
    }
    best.filter(|&(_, d)| d > 0.0)
}

/// Fits a piecewise-linear approximation through `points` using at most
/// `max_segments` segments (so at most `max_segments + 1` knots).
///
/// The first and last points are always knots. If the points are already
/// exactly piecewise linear with fewer segments, fewer are used.
///
/// ```
/// use epfis_segfit::fit_max_segments;
///
/// // A V-shaped curve needs two segments; the greedy fitter finds the
/// // kink and reproduces the samples exactly.
/// let pts: Vec<(f64, f64)> = (0..21)
///     .map(|i| (i as f64, (i as f64 - 10.0).abs()))
///     .collect();
/// let f = fit_max_segments(&pts, 6);
/// assert_eq!(f.segments(), 2);
/// assert!((f.eval(3.0) - 7.0).abs() < 1e-12);
/// ```
///
/// # Panics
/// Panics if `points` is empty, unsorted, non-finite, or
/// `max_segments == 0`.
pub fn fit_max_segments(points: &[(f64, f64)], max_segments: usize) -> PiecewiseLinear {
    assert!(max_segments >= 1, "need at least one segment");
    validate_points(points);
    if points.len() <= 2 {
        return PiecewiseLinear::new(points.to_vec());
    }
    let mut knot_idx = vec![0usize, points.len() - 1];
    while knot_idx.len() < max_segments + 1 {
        // Find the interval with the single worst deviation overall.
        let mut worst: Option<(usize, usize, f64)> = None; // (insert_pos, point_idx, dev)
        for (pos, w) in knot_idx.windows(2).enumerate() {
            if let Some((idx, dev)) = worst_deviation(points, w[0], w[1]) {
                if dev > worst.map_or(0.0, |(_, _, d)| d) {
                    worst = Some((pos + 1, idx, dev));
                }
            }
        }
        match worst {
            Some((pos, idx, _)) => knot_idx.insert(pos, idx),
            None => break, // exact fit achieved early
        }
    }
    PiecewiseLinear::new(knot_idx.into_iter().map(|i| points[i]).collect())
}

/// Fits with as few segments as needed so every sample's vertical deviation
/// is `<= tolerance`. Returns the fit; the segment count is in
/// [`PiecewiseLinear::segments`].
///
/// # Panics
/// Panics on invalid `points` or a negative/non-finite `tolerance`.
pub fn fit_tolerance(points: &[(f64, f64)], tolerance: f64) -> PiecewiseLinear {
    assert!(
        tolerance.is_finite() && tolerance >= 0.0,
        "tolerance must be finite and non-negative"
    );
    validate_points(points);
    if points.len() <= 2 {
        return PiecewiseLinear::new(points.to_vec());
    }
    let mut knot_idx = vec![0usize, points.len() - 1];
    loop {
        let mut worst: Option<(usize, usize, f64)> = None;
        for (pos, w) in knot_idx.windows(2).enumerate() {
            if let Some((idx, dev)) = worst_deviation(points, w[0], w[1]) {
                if dev > worst.map_or(0.0, |(_, _, d)| d) {
                    worst = Some((pos + 1, idx, dev));
                }
            }
        }
        match worst {
            Some((pos, idx, dev)) if dev > tolerance => knot_idx.insert(pos, idx),
            _ => break,
        }
    }
    PiecewiseLinear::new(knot_idx.into_iter().map(|i| points[i]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_curve() -> Vec<(f64, f64)> {
        // A convex decreasing curve shaped like the paper's FPF curves:
        // exponential decay from ~N down to ~T as B grows.
        (0..200)
            .map(|i| {
                let x = 10.0 + i as f64 * 5.0;
                (x, 1000.0 + 49_000.0 * (-(x - 10.0) / 150.0).exp())
            })
            .collect()
    }

    #[test]
    fn exact_on_already_linear_points() {
        let pts = vec![(0.0, 0.0), (1.0, 2.0), (2.0, 4.0), (3.0, 6.0)];
        let f = fit_max_segments(&pts, 6);
        assert_eq!(report(&f, &pts).max_abs_error, 0.0);
        // Collinear points need only one segment.
        assert_eq!(f.segments(), 1);
    }

    #[test]
    fn respects_segment_budget() {
        let pts = sample_curve();
        for k in [1usize, 2, 3, 6, 10] {
            let f = fit_max_segments(&pts, k);
            assert!(f.segments() <= k, "budget {k} produced {}", f.segments());
        }
    }

    #[test]
    fn error_decreases_with_more_segments() {
        let pts = sample_curve();
        let mut prev = f64::INFINITY;
        for k in [1usize, 2, 4, 6, 12] {
            let e = report(&fit_max_segments(&pts, k), &pts).max_abs_error;
            assert!(e <= prev + 1e-9, "k={k}: {e} > {prev}");
            prev = e;
        }
    }

    #[test]
    fn six_segments_fit_fpf_like_curve_well() {
        // The paper's claim: ~6 segments suffice for FPF curves.
        let pts = sample_curve();
        let f = fit_max_segments(&pts, 6);
        let r = report(&f, &pts);
        let range = pts[0].1 - pts.last().unwrap().1;
        assert!(
            r.max_abs_error / range < 0.03,
            "six segments should fit a convex curve within 3% of its range, got {}",
            r.max_abs_error / range
        );
    }

    #[test]
    fn endpoints_are_always_knots() {
        let pts = sample_curve();
        let f = fit_max_segments(&pts, 3);
        assert_eq!(f.knots()[0], pts[0]);
        assert_eq!(*f.knots().last().unwrap(), *pts.last().unwrap());
    }

    #[test]
    fn tolerance_fit_meets_tolerance() {
        let pts = sample_curve();
        for tol in [10000.0, 1000.0, 100.0, 1.0] {
            let f = fit_tolerance(&pts, tol);
            let r = report(&f, &pts);
            assert!(
                r.max_abs_error <= tol + 1e-9,
                "tol {tol}: err {}",
                r.max_abs_error
            );
        }
    }

    #[test]
    fn tighter_tolerance_needs_more_segments() {
        let pts = sample_curve();
        let loose = fit_tolerance(&pts, 10000.0).segments();
        let tight = fit_tolerance(&pts, 10.0).segments();
        assert!(tight >= loose);
    }

    #[test]
    fn zero_tolerance_reproduces_every_point() {
        let pts: Vec<(f64, f64)> = (0..40).map(|i| (i as f64, ((i * 7) % 11) as f64)).collect();
        let f = fit_tolerance(&pts, 0.0);
        for &(x, y) in &pts {
            assert!((f.eval(x) - y).abs() < 1e-9);
        }
    }

    #[test]
    fn two_points_fit_is_the_chord() {
        let pts = vec![(1.0, 5.0), (3.0, 9.0)];
        let f = fit_max_segments(&pts, 6);
        assert_eq!(f.segments(), 1);
        assert!((f.eval(2.0) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn single_point_fit_is_constant() {
        let f = fit_max_segments(&[(2.0, 4.0)], 3);
        assert_eq!(f.eval(100.0), 4.0);
    }

    #[test]
    fn report_on_empty_points() {
        let f = PiecewiseLinear::new(vec![(0.0, 0.0), (1.0, 1.0)]);
        let r = report(&f, &[]);
        assert_eq!(r.max_abs_error, 0.0);
        assert_eq!(r.mean_abs_error, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_budget_panics() {
        fit_max_segments(&[(0.0, 0.0), (1.0, 1.0)], 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn duplicate_x_panics() {
        fit_max_segments(&[(0.0, 0.0), (0.0, 1.0)], 2);
    }
}
