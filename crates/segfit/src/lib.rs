//! Piecewise-linear approximation of monotone curves.
//!
//! Section 4.1 of the paper approximates the FPF curve "using line segments
//! (see, for example, Natarajan, 1991)", stores only the segment end-points
//! in the system catalog, and reports that estimation error stops improving
//! beyond five segments (six are used). This crate provides:
//!
//! * [`PiecewiseLinear`] — the catalog representation: a sorted list of
//!   `(x, y)` knots, evaluated by interpolation inside the knot range and by
//!   linear extrapolation of the end segments outside it (the paper's
//!   "extrapolation is used to generate page fetch estimates" when the
//!   optimizer's `B` falls outside the modeled range);
//! * [`fit_max_segments`] — fits at most `k` segments by greedy knot
//!   refinement (repeatedly split the segment with the largest vertical
//!   deviation — the Douglas–Peucker/Natarajan scheme);
//! * [`fit_tolerance`] — fits as few segments as needed for a vertical error
//!   bound (used by the sensitivity experiment);
//! * [`FitReport`] — residual metrics of a fit against its source points.

pub mod fit;
pub mod pwl;

pub use fit::{fit_max_segments, fit_tolerance, FitReport};
pub use pwl::{EvalTrace, PiecewiseLinear, SegmentKind};
