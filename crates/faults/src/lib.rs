//! Injectable virtual filesystem for the durability stack.
//!
//! Every write-side file operation the WAL and the catalog persist path
//! perform goes through the [`Vfs`] trait: opening and creating files,
//! writing, `fdatasync`, directory syncs, renames, and removals. Production
//! code uses the zero-cost passthrough [`StdVfs`]; tests and chaos drills
//! swap in a [`FaultVfs`] whose deterministic, scripted schedule injects
//! storage faults at exact call sites:
//!
//! * fail the Nth fault-eligible call process-wide ([`Rule::at_index`]),
//! * fail every call from the Nth on ([`Rule::after_index`]),
//! * fail every call touching a path containing a substring
//!   ([`Rule::path_contains`]),
//! * fail only a specific operation kind ([`Rule::on_op`]),
//! * write only the first K bytes before failing ([`FaultKind::ShortWrite`],
//!   producing genuinely torn tails),
//! * return `ENOSPC` or `EIO`, and
//! * heal after a bounded number of injections ([`Rule::times`] — the
//!   fail-once-then-heal schedule is `.times(1)`).
//!
//! The schedule is shared between the `FaultVfs` and every file handle it
//! opens, so a fault can land inside a background flusher thread just as
//! well as on the caller's own path. [`FaultVfs::from_spec`] parses the
//! same schedules from a text form (`op=sync_data kind=eio after=10
//! times=3 path=wal`), which `epfis serve` exposes through the
//! `EPFIS_FAULTS` environment variable for chaos smoke tests that need a
//! real server binary to hit a scripted disk failure.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// An open file handle obtained from a [`Vfs`].
///
/// The surface is exactly what the WAL writer and the catalog persist path
/// need: sequential writes, data/metadata syncs, truncation, an
/// end-of-file seek after reopening an existing segment, and handle
/// duplication for the background flusher (which `fdatasync`s a clone of
/// the current segment's fd).
pub trait VfsFile: Send {
    /// Writes the whole buffer or fails; a short write surfaces as an error
    /// after the partial bytes have landed (matching what a real `ENOSPC`
    /// mid-`write_all` leaves on disk).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// `fdatasync`: flushes file data to stable storage.
    fn sync_data(&self) -> io::Result<()>;
    /// `fsync`: flushes file data and metadata to stable storage.
    fn sync_all(&self) -> io::Result<()>;
    /// Truncates (or extends) the file to `len` bytes.
    fn set_len(&self, len: u64) -> io::Result<()>;
    /// Seeks to the end, returning the offset.
    fn seek_end(&mut self) -> io::Result<u64>;
    /// Duplicates the handle; syncs on the clone cover the same inode.
    fn try_clone(&self) -> io::Result<Box<dyn VfsFile>>;
}

/// A virtual filesystem covering the write-side operations of the
/// durability stack. Implementations must be cheap to call: [`StdVfs`] is
/// a direct passthrough to `std::fs`.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Creates (truncating if present) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens an existing file for writing without truncation.
    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Lists the file names in a directory.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// The length of a file in bytes.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
    /// Creates a directory and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Renames a file (atomic within a filesystem, as `std::fs::rename`).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Durably records directory-entry changes (create/remove/rename need
    /// the directory inode synced, not just file data). Best-effort on
    /// platforms where directories cannot be opened.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The operation kinds a fault rule can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// [`Vfs::create`].
    Create,
    /// [`Vfs::open_write`].
    Open,
    /// [`VfsFile::write_all`] (the append path).
    Write,
    /// [`VfsFile::sync_data`] / [`VfsFile::sync_all`].
    SyncData,
    /// [`Vfs::sync_dir`].
    SyncDir,
    /// [`Vfs::rename`].
    Rename,
    /// [`Vfs::remove`].
    Remove,
    /// [`VfsFile::set_len`].
    Truncate,
}

impl OpKind {
    /// Every fault-eligible operation kind, in the order the global op
    /// counter observes them being scheduled by tests.
    pub const ALL: &'static [OpKind] = &[
        OpKind::Create,
        OpKind::Open,
        OpKind::Write,
        OpKind::SyncData,
        OpKind::SyncDir,
        OpKind::Rename,
        OpKind::Remove,
        OpKind::Truncate,
    ];

    fn parse(s: &str) -> Result<OpKind, String> {
        Ok(match s {
            "create" => OpKind::Create,
            "open" => OpKind::Open,
            "write" | "append" => OpKind::Write,
            "sync_data" | "fsync" => OpKind::SyncData,
            "sync_dir" => OpKind::SyncDir,
            "rename" => OpKind::Rename,
            "remove" => OpKind::Remove,
            "truncate" => OpKind::Truncate,
            other => return Err(format!("unknown vfs op {other:?}")),
        })
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OpKind::Create => "create",
            OpKind::Open => "open",
            OpKind::Write => "write",
            OpKind::SyncData => "sync_data",
            OpKind::SyncDir => "sync_dir",
            OpKind::Rename => "rename",
            OpKind::Remove => "remove",
            OpKind::Truncate => "truncate",
        })
    }
}

/// What error an injected fault produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `ENOSPC` — no space left on device.
    Enospc,
    /// `EIO` — a generic I/O error.
    Eio,
    /// For `Write` ops: land only the first `K` bytes, then fail with
    /// `ENOSPC`. On other op kinds this behaves like plain `Enospc`.
    ShortWrite(usize),
}

impl FaultKind {
    fn error(self) -> io::Error {
        match self {
            FaultKind::Enospc | FaultKind::ShortWrite(_) => {
                #[cfg(unix)]
                {
                    io::Error::from_raw_os_error(28) // ENOSPC
                }
                #[cfg(not(unix))]
                {
                    io::Error::new(io::ErrorKind::Other, "injected ENOSPC")
                }
            }
            FaultKind::Eio => {
                #[cfg(unix)]
                {
                    io::Error::from_raw_os_error(5) // EIO
                }
                #[cfg(not(unix))]
                {
                    io::Error::new(io::ErrorKind::Other, "injected EIO")
                }
            }
        }
    }
}

/// One scripted fault: a filter (op kind, path substring, call index) plus
/// the error to inject and an optional injection budget.
#[derive(Debug, Clone)]
pub struct Rule {
    kind: FaultKind,
    op: Option<OpKind>,
    path_contains: Option<String>,
    /// Fire only when the global op index is exactly this.
    at_index: Option<u64>,
    /// Fire only when the global op index is `>=` this.
    from_index: u64,
    /// Remaining injections before the rule heals; `None` = unbounded.
    budget: Option<u64>,
}

impl Rule {
    /// A rule injecting `kind` on every fault-eligible call until
    /// narrowed by the builder methods.
    pub fn new(kind: FaultKind) -> Rule {
        Rule {
            kind,
            op: None,
            path_contains: None,
            at_index: None,
            from_index: 0,
            budget: None,
        }
    }

    /// Restrict to one operation kind.
    pub fn on_op(mut self, op: OpKind) -> Rule {
        self.op = Some(op);
        self
    }

    /// Restrict to paths whose UTF-8 form contains `needle`.
    pub fn path_contains(mut self, needle: impl Into<String>) -> Rule {
        self.path_contains = Some(needle.into());
        self
    }

    /// Fire only on the call with global op index `i` (0-based, counted
    /// across every fault-eligible operation on the schedule).
    pub fn at_index(mut self, i: u64) -> Rule {
        self.at_index = Some(i);
        self
    }

    /// Fire only from global op index `i` on.
    pub fn after_index(mut self, i: u64) -> Rule {
        self.from_index = i;
        self
    }

    /// Heal after `n` injections. `.times(1)` is the classic
    /// fail-once-then-heal schedule.
    pub fn times(mut self, n: u64) -> Rule {
        self.budget = Some(n);
        self
    }

    fn matches(&self, index: u64, op: OpKind, path: &Path) -> bool {
        if self.budget == Some(0) {
            return false;
        }
        if let Some(want) = self.op {
            if want != op {
                return false;
            }
        }
        if let Some(at) = self.at_index {
            if index != at {
                return false;
            }
        }
        if index < self.from_index {
            return false;
        }
        if let Some(needle) = &self.path_contains {
            if !path.to_string_lossy().contains(needle.as_str()) {
                return false;
            }
        }
        true
    }
}

#[derive(Debug, Default)]
struct ScheduleState {
    /// Fault-eligible operations observed so far (the global op index).
    ops: u64,
    rules: Vec<Rule>,
    injected: u64,
    /// When false the schedule observes (counts ops) but injects nothing.
    armed: bool,
}

/// The shared, mutable fault schedule behind a [`FaultVfs`] and all of its
/// file handles. Clone freely; all clones observe and steer one schedule.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    state: Arc<Mutex<ScheduleState>>,
}

impl Schedule {
    /// A fresh schedule with no rules, armed.
    pub fn new() -> Schedule {
        let s = Schedule::default();
        s.state.lock().unwrap_or_else(|e| e.into_inner()).armed = true;
        s
    }

    /// Adds a rule.
    pub fn push(&self, rule: Rule) {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .rules
            .push(rule);
    }

    /// Removes every rule (heals all faults) without resetting counters.
    pub fn heal(&self) {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .rules
            .clear();
    }

    /// Arms or disarms injection. Disarmed schedules still count ops, so a
    /// counting pass can learn how many call sites a workload touches.
    pub fn set_armed(&self, armed: bool) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).armed = armed;
    }

    /// Fault-eligible operations observed so far.
    pub fn ops(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).ops
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .injected
    }

    /// Resets the op and injection counters (rules stay).
    pub fn reset_counters(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.ops = 0;
        st.injected = 0;
    }

    /// Consults the schedule for one operation: returns the fault to
    /// inject, if any, and advances the op counter.
    fn check(&self, op: OpKind, path: &Path) -> Option<FaultKind> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let index = st.ops;
        st.ops += 1;
        if !st.armed {
            return None;
        }
        for rule in st.rules.iter_mut() {
            if rule.matches(index, op, path) {
                if let Some(budget) = &mut rule.budget {
                    *budget -= 1;
                }
                let kind = rule.kind;
                st.injected += 1;
                return Some(kind);
            }
        }
        None
    }
}

/// Parses a scripted schedule from text: `;`-separated rules, each a list
/// of whitespace-separated `key=value` tokens.
///
/// ```text
/// kind=enospc                      error to inject: enospc | eio | short:K
/// op=write                         create|open|write|sync_data|sync_dir|rename|remove|truncate
/// path=wal                         only paths containing this substring
/// at=N                             only the call with global op index N
/// after=N                          only calls with global op index >= N
/// times=K                          heal after K injections
/// ```
///
/// Example: `op=sync_data kind=eio after=10 times=3 path=wal`.
pub fn parse_spec(spec: &str) -> Result<Vec<Rule>, String> {
    let mut rules = Vec::new();
    for part in spec.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let mut kind = None;
        let mut rule_op = None;
        let mut path = None;
        let mut at = None;
        let mut after = None;
        let mut times = None;
        for tok in part.split_whitespace() {
            let (key, value) = tok
                .split_once('=')
                .ok_or_else(|| format!("bad fault token {tok:?} (expected key=value)"))?;
            match key {
                "kind" => {
                    kind = Some(match value {
                        "enospc" => FaultKind::Enospc,
                        "eio" => FaultKind::Eio,
                        short => {
                            let k = short
                                .strip_prefix("short:")
                                .ok_or_else(|| format!("unknown fault kind {value:?}"))?;
                            FaultKind::ShortWrite(
                                k.parse()
                                    .map_err(|e| format!("bad short-write bytes: {e}"))?,
                            )
                        }
                    })
                }
                "op" => rule_op = Some(OpKind::parse(value)?),
                "path" => path = Some(value.to_string()),
                "at" => at = Some(value.parse().map_err(|e| format!("bad at index: {e}"))?),
                "after" => {
                    after = Some(value.parse().map_err(|e| format!("bad after index: {e}"))?)
                }
                "times" => times = Some(value.parse().map_err(|e| format!("bad times: {e}"))?),
                other => return Err(format!("unknown fault key {other:?}")),
            }
        }
        let mut rule = Rule::new(kind.ok_or("fault rule missing kind=")?);
        if let Some(op) = rule_op {
            rule = rule.on_op(op);
        }
        if let Some(p) = path {
            rule = rule.path_contains(p);
        }
        if let Some(i) = at {
            rule = rule.at_index(i);
        }
        if let Some(i) = after {
            rule = rule.after_index(i);
        }
        if let Some(n) = times {
            rule = rule.times(n);
        }
        rules.push(rule);
    }
    Ok(rules)
}

// ---------------------------------------------------------------------------
// StdVfs: the production passthrough.
// ---------------------------------------------------------------------------

/// The production filesystem: every operation maps 1:1 onto `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdVfs;

impl StdVfs {
    /// A shared handle to the passthrough filesystem.
    pub fn shared() -> Arc<dyn Vfs> {
        Arc::new(StdVfs)
    }
}

struct StdFile(File);

impl VfsFile for StdFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn sync_data(&self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn sync_all(&self) -> io::Result<()> {
        self.0.sync_all()
    }
    fn set_len(&self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
    fn seek_end(&mut self) -> io::Result<u64> {
        self.0.seek(SeekFrom::End(0))
    }
    fn try_clone(&self) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(StdFile(self.0.try_clone()?)))
    }
}

impl Vfs for StdVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(StdFile(file)))
    }

    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(StdFile(
            OpenOptions::new().write(true).open(path)?,
        )))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut data = Vec::new();
        File::open(path)?.read_to_end(&mut data)?;
        Ok(data)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        Ok(names)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(fs::metadata(path)?.len())
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        #[cfg(unix)]
        {
            File::open(dir)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            let _ = dir;
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// FaultVfs: the deterministic fault injector.
// ---------------------------------------------------------------------------

/// A filesystem that consults a scripted [`Schedule`] before delegating to
/// an inner [`Vfs`] (usually [`StdVfs`]). Deterministic: the same workload
/// against the same schedule injects the same faults at the same calls.
#[derive(Debug, Clone)]
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    schedule: Schedule,
}

impl FaultVfs {
    /// Wraps the passthrough filesystem with a fresh, empty schedule.
    pub fn new() -> FaultVfs {
        FaultVfs::wrap(StdVfs::shared())
    }

    /// Wraps an arbitrary inner filesystem.
    pub fn wrap(inner: Arc<dyn Vfs>) -> FaultVfs {
        FaultVfs {
            inner,
            schedule: Schedule::new(),
        }
    }

    /// Builds a `FaultVfs` over [`StdVfs`] from a textual schedule (see
    /// [`parse_spec`]).
    pub fn from_spec(spec: &str) -> Result<FaultVfs, String> {
        let vfs = FaultVfs::new();
        for rule in parse_spec(spec)? {
            vfs.schedule.push(rule);
        }
        Ok(vfs)
    }

    /// The shared schedule: add rules, heal, read counters.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// A shared handle suitable for `WalOptions::vfs` and friends.
    pub fn shared(self) -> Arc<dyn Vfs> {
        Arc::new(self)
    }

    fn gate(&self, op: OpKind, path: &Path) -> io::Result<()> {
        match self.schedule.check(op, path) {
            Some(kind) => Err(kind.error()),
            None => Ok(()),
        }
    }
}

impl Default for FaultVfs {
    fn default() -> Self {
        FaultVfs::new()
    }
}

struct FaultFile {
    inner: Box<dyn VfsFile>,
    path: PathBuf,
    schedule: Schedule,
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.schedule.check(OpKind::Write, &self.path) {
            None => self.inner.write_all(buf),
            Some(FaultKind::ShortWrite(k)) => {
                let k = k.min(buf.len());
                // Land the partial prefix so the tail is genuinely torn.
                self.inner.write_all(&buf[..k])?;
                Err(FaultKind::ShortWrite(k).error())
            }
            Some(kind) => Err(kind.error()),
        }
    }

    fn sync_data(&self) -> io::Result<()> {
        match self.schedule.check(OpKind::SyncData, &self.path) {
            None => self.inner.sync_data(),
            Some(kind) => Err(kind.error()),
        }
    }

    fn sync_all(&self) -> io::Result<()> {
        match self.schedule.check(OpKind::SyncData, &self.path) {
            None => self.inner.sync_all(),
            Some(kind) => Err(kind.error()),
        }
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        match self.schedule.check(OpKind::Truncate, &self.path) {
            None => self.inner.set_len(len),
            Some(kind) => Err(kind.error()),
        }
    }

    fn seek_end(&mut self) -> io::Result<u64> {
        // Seeks move no data; they are not fault-eligible.
        self.inner.seek_end()
    }

    fn try_clone(&self) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(FaultFile {
            inner: self.inner.try_clone()?,
            path: self.path.clone(),
            schedule: self.schedule.clone(),
        }))
    }
}

impl Vfs for FaultVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.gate(OpKind::Create, path)?;
        Ok(Box::new(FaultFile {
            inner: self.inner.create(path)?,
            path: path.to_path_buf(),
            schedule: self.schedule.clone(),
        }))
    }

    fn open_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.gate(OpKind::Open, path)?;
        Ok(Box::new(FaultFile {
            inner: self.inner.open_write(path)?,
            path: path.to_path_buf(),
            schedule: self.schedule.clone(),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        // Reads are not fault-eligible: the sweep targets durability, and
        // replay corruption is covered by the torn-tail tests.
        self.inner.read(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.inner.list(dir)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.inner.file_len(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.gate(OpKind::Remove, path)?;
        self.inner.remove(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.gate(OpKind::Rename, from)?;
        self.inner.rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.gate(OpKind::SyncDir, dir)?;
        self.inner.sync_dir(dir)
    }
}

/// Writes `contents` to `path` atomically through a [`Vfs`]: write to a
/// temp file in the same directory, fsync it, rename over the target, and
/// sync the directory. Readers see the old bytes or the new bytes, never a
/// mix; a fault at any step leaves the old file byte-identical.
pub fn write_atomic(vfs: &dyn Vfs, path: &Path, contents: &str) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp_name = format!(".{file_name}.tmp.{}", std::process::id());
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => PathBuf::from(&tmp_name),
    };
    let result = (|| -> io::Result<()> {
        let mut file = vfs.create(&tmp)?;
        file.write_all(contents.as_bytes())?;
        file.sync_all()?;
        drop(file);
        vfs.rename(&tmp, path)?;
        if let Some(d) = dir {
            vfs.sync_dir(d)?;
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "epfis-faults-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn std_vfs_round_trips() {
        let dir = temp_dir("std");
        let vfs = StdVfs;
        let path = dir.join("a.bin");
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(vfs.read(&path).unwrap(), b"hello");
        assert_eq!(vfs.file_len(&path).unwrap(), 5);
        let mut f = vfs.open_write(&path).unwrap();
        assert_eq!(f.seek_end().unwrap(), 5);
        f.write_all(b" world").unwrap();
        drop(f);
        assert_eq!(vfs.read(&path).unwrap(), b"hello world");
        let to = dir.join("b.bin");
        vfs.rename(&path, &to).unwrap();
        assert!(vfs.list(&dir).unwrap().contains(&"b.bin".to_string()));
        vfs.sync_dir(&dir).unwrap();
        vfs.remove(&to).unwrap();
        assert!(vfs.list(&dir).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn nth_call_fault_fires_exactly_once() {
        let dir = temp_dir("nth");
        let vfs = FaultVfs::new();
        vfs.schedule().push(Rule::new(FaultKind::Eio).at_index(2));
        // op 0: create, op 1: write, op 2: sync_data (fails), op 3: write.
        let mut f = vfs.create(&dir.join("x")).unwrap();
        f.write_all(b"a").unwrap();
        let err = f.sync_data().unwrap_err();
        assert_eq!(err.raw_os_error(), Some(5));
        f.write_all(b"b").unwrap();
        assert_eq!(vfs.schedule().injected(), 1);
        assert_eq!(vfs.schedule().ops(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn path_and_op_filters_narrow_injection() {
        let dir = temp_dir("filters");
        let vfs = FaultVfs::new();
        vfs.schedule().push(
            Rule::new(FaultKind::Enospc)
                .on_op(OpKind::Write)
                .path_contains("wal-"),
        );
        let mut other = vfs.create(&dir.join("catalog.scat")).unwrap();
        other.write_all(b"fine").unwrap();
        let mut seg = vfs.create(&dir.join("wal-000000.seg")).unwrap();
        let err = seg.write_all(b"doomed").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_write_lands_partial_prefix() {
        let dir = temp_dir("short");
        let vfs = FaultVfs::new();
        vfs.schedule().push(
            Rule::new(FaultKind::ShortWrite(3))
                .on_op(OpKind::Write)
                .times(1),
        );
        let path = dir.join("torn");
        let mut f = vfs.create(&path).unwrap();
        assert!(f.write_all(b"abcdef").is_err());
        // Healed after one injection: the next write goes through whole.
        f.write_all(b"XY").unwrap();
        drop(f);
        assert_eq!(fs::read(&path).unwrap(), b"abcXY");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fail_once_then_heal() {
        let dir = temp_dir("heal");
        let vfs = FaultVfs::new();
        vfs.schedule()
            .push(Rule::new(FaultKind::Eio).on_op(OpKind::SyncData).times(1));
        let f = vfs.create(&dir.join("x")).unwrap();
        assert!(f.sync_data().is_err());
        f.sync_data().unwrap();
        f.sync_data().unwrap();
        assert_eq!(vfs.schedule().injected(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disarmed_schedule_counts_but_does_not_inject() {
        let dir = temp_dir("disarmed");
        let vfs = FaultVfs::new();
        vfs.schedule().push(Rule::new(FaultKind::Eio));
        vfs.schedule().set_armed(false);
        let mut f = vfs.create(&dir.join("x")).unwrap();
        f.write_all(b"ok").unwrap();
        assert_eq!(vfs.schedule().ops(), 2);
        assert_eq!(vfs.schedule().injected(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spec_parses_rules_and_rejects_garbage() {
        let rules =
            parse_spec("op=sync_data kind=eio after=10 times=3 path=wal; kind=short:7 at=2")
                .unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].op, Some(OpKind::SyncData));
        assert_eq!(rules[0].kind, FaultKind::Eio);
        assert_eq!(rules[0].from_index, 10);
        assert_eq!(rules[0].budget, Some(3));
        assert_eq!(rules[0].path_contains.as_deref(), Some("wal"));
        assert_eq!(rules[1].kind, FaultKind::ShortWrite(7));
        assert_eq!(rules[1].at_index, Some(2));
        assert!(parse_spec("kind=tornado").is_err());
        assert!(parse_spec("op=write").is_err(), "missing kind");
        assert!(parse_spec("kind=eio frequency=often").is_err());
        assert!(parse_spec("kind=eio op").is_err());
        assert!(parse_spec("").unwrap().is_empty());
    }

    #[test]
    fn write_atomic_is_old_or_new_under_any_single_fault() {
        let dir = temp_dir("atomic");
        let path = dir.join("catalog.scat");
        let vfs = FaultVfs::new();
        write_atomic(&vfs, &path, "old contents\n").unwrap();
        let clean_ops = vfs.schedule().ops();
        assert!(clean_ops >= 4, "create+write+sync+rename+dirsync");
        for i in 0..clean_ops {
            let vfs = FaultVfs::new();
            vfs.schedule()
                .push(Rule::new(FaultKind::Enospc).at_index(i));
            let result = write_atomic(&vfs, &path, "new contents\n");
            let on_disk = fs::read_to_string(&path).unwrap();
            match result {
                Ok(()) => assert_eq!(on_disk, "new contents\n", "fault at op {i}"),
                Err(_) => assert!(
                    on_disk == "old contents\n" || on_disk == "new contents\n",
                    "fault at op {i} left mixed state: {on_disk:?}"
                ),
            }
            // Reset for the next iteration.
            write_atomic(&StdVfs, &path, "old contents\n").unwrap();
        }
        // No temp litter left behind.
        let leftovers: Vec<String> = StdVfs
            .list(&dir)
            .unwrap()
            .into_iter()
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
